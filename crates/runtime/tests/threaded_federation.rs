//! Integration tests: the HC3I protocol on the threaded messaging layer.
//!
//! Same state machine as the simulator, real concurrency: these tests
//! exercise delivery, forced CLCs, rollback with log replay, duplicate
//! suppression and GC over OS threads and channels.

use hc3i_core::{AppPayload, PiggybackMode, ProtocolConfig, SeqNum};
use netsim::NodeId;
use runtime::{Federation, RtEvent, RuntimeConfig};
use std::time::Duration;

const TICK: Duration = Duration::from_secs(5);

fn n(c: u16, r: u32) -> NodeId {
    NodeId::new(c, r)
}

fn pay(tag: u64) -> AppPayload {
    AppPayload { bytes: 512, tag }
}

#[test]
fn intra_cluster_delivery() {
    let fed = Federation::spawn(RuntimeConfig::manual(vec![2, 2]));
    fed.send_app(n(0, 0), n(0, 1), pay(7));
    let seen = fed
        .wait_for(
            TICK,
            |e| matches!(e, RtEvent::Delivered { payload, .. } if payload.tag == 7),
        )
        .expect("delivery");
    assert!(seen
        .iter()
        .all(|e| !matches!(e, RtEvent::LateCrossing { .. })));
    fed.shutdown();
}

#[test]
fn manual_checkpoint_commits_cluster_wide() {
    let fed = Federation::spawn(RuntimeConfig::manual(vec![3, 2]));
    fed.checkpoint_now(0);
    fed.wait_for(TICK, |e| {
        matches!(
            e,
            RtEvent::Committed {
                cluster: 0,
                sn,
                forced: false
            } if *sn == SeqNum(2)
        )
    })
    .expect("commit");
    let engines = fed.shutdown();
    for r in 0..3 {
        assert_eq!(engines[&n(0, r)].sn(), SeqNum(2));
        assert_eq!(engines[&n(0, r)].store().len(), 2);
    }
    assert_eq!(engines[&n(1, 0)].sn(), SeqNum(1), "cluster 1 untouched");
}

#[test]
fn inter_cluster_message_forces_clc_and_acks() {
    let fed = Federation::spawn(RuntimeConfig::manual(vec![2, 2]));
    fed.send_app(n(0, 0), n(1, 1), pay(9));
    // The forced CLC commits before the deferred delivery, but the two
    // events come from different nodes — accept either arrival order.
    let (mut committed, mut delivered) = (false, false);
    fed.wait_for(TICK, |e| {
        committed |= matches!(
            e,
            RtEvent::Committed {
                cluster: 1,
                forced: true,
                ..
            }
        );
        delivered |= matches!(e, RtEvent::Delivered { payload, .. } if payload.tag == 9);
        committed && delivered
    })
    .expect("forced CLC committed and message delivered");
    // Let the ack (delivery → sender-log update) land before freezing.
    fed.quiesce(2, TICK);
    let engines = fed.shutdown();
    assert_eq!(engines[&n(1, 1)].sn(), SeqNum(2), "forced CLC committed");
    assert_eq!(engines[&n(1, 1)].ddv().get(0), SeqNum(1));
    let log = engines[&n(0, 0)].log();
    assert_eq!(log.len(), 1);
    assert_eq!(
        log.iter().next().unwrap().ack_sn,
        Some(SeqNum(2)),
        "ack flowed back to the sender log"
    );
}

#[test]
fn periodic_timer_checkpoints() {
    let fed = Federation::spawn(
        RuntimeConfig::manual(vec![2, 2]).with_clc_delay(0, Duration::from_millis(50)),
    );
    // Expect at least 3 timer-driven commits within a second.
    let mut commits = 0;
    let ok = fed.wait_for(TICK, |e| {
        if matches!(
            e,
            RtEvent::Committed {
                cluster: 0,
                forced: false,
                ..
            }
        ) {
            commits += 1;
        }
        commits >= 3
    });
    assert!(ok.is_some(), "saw {commits} commits");
    fed.shutdown();
}

#[test]
fn receiver_fault_replays_from_sender_log() {
    let fed = Federation::spawn(RuntimeConfig::manual(vec![2, 3]));
    fed.send_app(n(0, 0), n(1, 2), pay(5));
    fed.wait_for(
        TICK,
        |e| matches!(e, RtEvent::Delivered { payload, .. } if payload.tag == 5),
    )
    .expect("first delivery");
    // Fail a cluster-1 node; the cluster restores its forced CLC, whose
    // state predates the delivery; the sender must replay tag 5.
    fed.fail(n(1, 1));
    fed.detect(n(1, 0), 1);
    fed.wait_for(TICK, |e| {
        matches!(e, RtEvent::Delivered { payload, to, .. }
            if payload.tag == 5 && *to == n(1, 2))
    })
    .expect("replayed delivery");
    let engines = fed.shutdown();
    assert!(!engines[&n(1, 1)].is_failed(), "revived");
    assert_eq!(
        engines[&n(0, 0)].sn(),
        SeqNum(1),
        "sender never rolled back"
    );
}

#[test]
fn sender_fault_cascades_receiver_rollback() {
    let fed = Federation::spawn(RuntimeConfig::manual(vec![2, 2]));
    fed.send_app(n(0, 0), n(1, 0), pay(3));
    fed.wait_for(
        TICK,
        |e| matches!(e, RtEvent::Delivered { payload, .. } if payload.tag == 3),
    )
    .expect("delivery");
    fed.fail(n(0, 1));
    fed.detect(n(0, 0), 1);
    // Both clusters must report rollbacks: cluster 0 restores SN 1 (losing
    // the send); cluster 1 restores its forced CLC 2 — the checkpoint that
    // *recorded* the dependency committed before the ghost was delivered,
    // so its state is clean.
    fed.wait_for(TICK, |e| {
        matches!(e, RtEvent::RolledBack { node, restore_sn, .. }
            if node.cluster.0 == 1 && *restore_sn == SeqNum(2))
    })
    .expect("receiver cascade");
    let engines = fed.shutdown();
    assert_eq!(engines[&n(1, 0)].sn(), SeqNum(2));
    assert_eq!(engines[&n(1, 0)].ddv().get(0), SeqNum(1), "stamp survives");
    assert!(
        engines[&n(1, 0)]
            .store()
            .latest()
            .unwrap()
            .payload
            .delivered
            .is_empty(),
        "the ghost delivery is gone from the restored state"
    );
    assert!(engines[&n(0, 0)].log().is_empty(), "lost send de-logged");
}

#[test]
fn gc_prunes_across_threads() {
    let fed = Federation::spawn(RuntimeConfig::manual(vec![2, 2]));
    // Sequence the checkpoints: back-to-back requests would coalesce into
    // a single 2PC round at the coordinator.
    for k in 2..=5u64 {
        for cluster in 0..2usize {
            fed.checkpoint_now(cluster);
            fed.wait_for(TICK, |e| {
                matches!(e, RtEvent::Committed { cluster: c, sn, .. }
                    if *c == cluster && *sn == SeqNum(k))
            })
            .expect("sequenced commit");
        }
    }
    fed.gc_now();
    let mut reports = 0;
    fed.wait_for(TICK, |e| {
        if matches!(e, RtEvent::GcReport { .. }) {
            reports += 1;
        }
        reports == 2
    })
    .expect("both clusters report");
    let engines = fed.shutdown();
    assert_eq!(
        engines[&n(0, 1)].store().len(),
        1,
        "independent: keep latest"
    );
    assert_eq!(engines[&n(1, 1)].store().len(), 1);
}

#[test]
fn concurrent_traffic_is_fully_delivered() {
    let fed = Federation::spawn(
        RuntimeConfig::manual(vec![4, 4])
            .with_protocol(ProtocolConfig::new(vec![4, 4]).with_piggyback(PiggybackMode::FullDdv)),
    );
    let total = 200u64;
    for k in 0..total {
        let from = n((k % 2) as u16, (k % 4) as u32);
        let to = n(((k + 1) % 2) as u16, ((k + 1) % 4) as u32);
        fed.send_app(from, to, pay(1000 + k));
    }
    let mut delivered = 0;
    let ok = fed.wait_for(Duration::from_secs(20), |e| {
        if matches!(e, RtEvent::Delivered { payload, .. } if payload.tag >= 1000) {
            delivered += 1;
        }
        delivered == total
    });
    assert!(ok.is_some(), "delivered {delivered}/{total}");
    let seen = fed.drain_events();
    assert!(seen
        .iter()
        .all(|e| !matches!(e, RtEvent::LateCrossing { .. })));
    fed.shutdown();
}

#[test]
fn duplicate_suppression_under_replay_race() {
    let fed = Federation::spawn(RuntimeConfig::manual(vec![2, 2]));
    // Prime a dependency and ack.
    fed.send_app(n(0, 0), n(1, 0), pay(1));
    fed.wait_for(
        TICK,
        |e| matches!(e, RtEvent::Delivered { payload, .. } if payload.tag == 1),
    )
    .expect("delivery");
    // Fail/restore the receiver twice in a row; every alert triggers a
    // replay of the same log entry — the receiver must deliver it at most
    // once per restored state.
    for _ in 0..2 {
        fed.fail(n(1, 1));
        fed.detect(n(1, 0), 1);
        fed.wait_for(
            TICK,
            |e| matches!(e, RtEvent::Delivered { payload, .. } if payload.tag == 1),
        )
        .expect("replay after rollback");
    }
    let engines = fed.shutdown();
    // Delivered exactly once in the final state.
    assert_eq!(engines[&n(1, 0)].sn(), SeqNum(2));
}

#[test]
fn reliable_transport_is_transparent_under_concurrent_traffic() {
    // The crossbeam layer never drops, so the transport must be a pure
    // pass-through here: every message still delivered exactly once, the
    // sequence wrappers and acks invisible to the protocol outcome.
    let fed = Federation::spawn(
        RuntimeConfig::manual(vec![4, 4])
            .with_protocol(ProtocolConfig::new(vec![4, 4]).with_piggyback(PiggybackMode::FullDdv))
            .with_reliable_transport(),
    );
    let total = 200u64;
    for k in 0..total {
        let from = n((k % 2) as u16, (k % 4) as u32);
        let to = n(((k + 1) % 2) as u16, ((k + 1) % 4) as u32);
        fed.send_app(from, to, pay(1000 + k));
    }
    let mut delivered = 0;
    let ok = fed.wait_for(Duration::from_secs(20), |e| {
        if matches!(e, RtEvent::Delivered { payload, .. } if payload.tag >= 1000) {
            delivered += 1;
        }
        delivered == total
    });
    assert!(ok.is_some(), "delivered {delivered}/{total}");
    fed.shutdown();
}

#[test]
fn reliable_transport_survives_rollback_replay() {
    // Rollback replay rides the transport too: the replayed copy gets a
    // fresh sequence, the engine's own dedup (not the transport's)
    // decides redelivery after the restore.
    let fed = Federation::spawn(RuntimeConfig::manual(vec![2, 3]).with_reliable_transport());
    fed.send_app(n(0, 0), n(1, 2), pay(5));
    fed.wait_for(
        TICK,
        |e| matches!(e, RtEvent::Delivered { payload, .. } if payload.tag == 5),
    )
    .expect("first delivery");
    fed.fail(n(1, 1));
    fed.detect(n(1, 0), 1);
    fed.wait_for(TICK, |e| {
        matches!(e, RtEvent::Delivered { payload, to, .. }
            if payload.tag == 5 && *to == n(1, 2))
    })
    .expect("replayed delivery through the transport");
    let engines = fed.shutdown();
    assert!(!engines[&n(1, 1)].is_failed(), "revived");
    assert_eq!(
        engines[&n(0, 0)].sn(),
        SeqNum(1),
        "sender never rolled back"
    );
}
