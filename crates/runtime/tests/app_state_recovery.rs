//! End-to-end application state capture and restore.
//!
//! A `CounterApp` runs on every node; its serialized state rides inside
//! every staged checkpoint. After a fault, the cluster's applications must
//! come back exactly at the restored checkpoint's state, and log replay
//! must re-apply only the deliveries the rollback lost.

use hc3i_core::AppPayload;
use netsim::NodeId;
use runtime::{Application, CounterApp, Federation, RtEvent, RuntimeConfig};
use std::time::Duration;

const TICK: Duration = Duration::from_secs(5);

fn n(c: u16, r: u32) -> NodeId {
    NodeId::new(c, r)
}

fn pay(tag: u64) -> AppPayload {
    AppPayload { bytes: 64, tag }
}

fn spawn() -> Federation {
    Federation::spawn(RuntimeConfig::manual(vec![2, 2]).with_app(|_| Box::new(CounterApp::new())))
}

fn wait_delivery(fed: &Federation, tag: u64) {
    fed.wait_for(
        TICK,
        |e| matches!(e, RtEvent::Delivered { payload, .. } if payload.tag == tag),
    )
    .unwrap_or_else(|| panic!("delivery of {tag}"));
}

#[test]
fn app_state_restored_to_checkpoint_then_replayed_forward() {
    let fed = spawn();
    let target = n(1, 1);

    // Tag 1 forces a CLC in cluster 1 and is delivered after it commits;
    // the committed checkpoint therefore holds the PRE-delivery app state.
    fed.send_app(n(0, 0), target, pay(1));
    wait_delivery(&fed, 1);

    // Checkpoint cluster 1 now: this CLC captures count=1 (tag 1 applied).
    fed.checkpoint_now(1);
    fed.wait_for(TICK, |e| {
        matches!(
            e,
            RtEvent::Committed {
                cluster: 1,
                forced: false,
                ..
            }
        )
    })
    .expect("manual checkpoint");

    // Tag 2 delivered after the checkpoint: it will be lost by the
    // rollback and must come back via log replay.
    fed.send_app(n(0, 0), target, pay(2));
    wait_delivery(&fed, 2);

    // Fault: cluster 1 restores the manual CLC (count=1), and the sender
    // replays tag 2 (acked after the restored checkpoint).
    fed.fail(n(1, 0));
    fed.detect(n(1, 1), 0);
    wait_delivery(&fed, 2);

    let state = fed.shutdown_with_apps();
    let (engine, app) = &state[&target];
    let app = app.as_ref().expect("app installed");
    let snap = app.snapshot();
    let mut counter = CounterApp::new();
    counter.restore(Some(&snap));

    // Final state: tag 1 (from the restored checkpoint) + tag 2 (replayed)
    // applied exactly once each.
    assert_eq!(
        counter.count, 2,
        "exactly two deliveries in the final state"
    );
    let mut expected = CounterApp::new();
    expected.on_deliver(n(0, 0), pay(1));
    expected.on_deliver(n(0, 0), pay(2));
    assert_eq!(counter.digest, expected.digest, "same order, same payloads");
    assert!(!engine.is_failed());
}

#[test]
fn rollback_to_initial_checkpoint_resets_app() {
    let fed = spawn();
    let target = n(1, 0);

    // Deliver into cluster 1 (forced CLC, delivery after commit), then
    // fail cluster 1. It restores the forced CLC — whose app state
    // predates the delivery — and the sender replays.
    fed.send_app(n(0, 1), target, pay(9));
    wait_delivery(&fed, 9);
    fed.fail(n(1, 1));
    fed.detect(n(1, 0), 1);
    wait_delivery(&fed, 9);

    let state = fed.shutdown_with_apps();
    let (_, app) = &state[&target];
    let snap = app.as_ref().expect("app").snapshot();
    let mut counter = CounterApp::new();
    counter.restore(Some(&snap));
    assert_eq!(counter.count, 1, "the replay re-applied the delivery once");
}

#[test]
fn unaffected_cluster_keeps_its_state() {
    let fed = spawn();
    // Local traffic in cluster 0.
    fed.send_app(n(0, 0), n(0, 1), pay(5));
    wait_delivery(&fed, 5);
    // Fault in cluster 1 (no dependencies anywhere).
    fed.fail(n(1, 1));
    fed.detect(n(1, 0), 1);
    fed.wait_for(
        TICK,
        |e| matches!(e, RtEvent::RolledBack { node, .. } if node.cluster.0 == 1),
    )
    .expect("cluster 1 recovery");

    let state = fed.shutdown_with_apps();
    let snap = state[&n(0, 1)].1.as_ref().expect("app").snapshot();
    let mut counter = CounterApp::new();
    counter.restore(Some(&snap));
    assert_eq!(counter.count, 1, "cluster 0's state untouched");
}
