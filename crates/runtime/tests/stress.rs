//! Sharded-runtime stress tests: many nodes multiplexed onto a fixed
//! worker pool, with heartbeat detection folded into shard ticks.
//!
//! The default-run test (64 nodes on 4 shards) is the regression floor
//! every `cargo test` exercises; the full-scale variants are `--ignored`:
//!
//! ```text
//! cargo test -p runtime --test stress -- --ignored --nocapture
//! ```
//!
//! The 2048-node variant is the ROADMAP "thousands of nodes" acceptance
//! check: it must complete on the default pool (`available_parallelism`
//! workers — on a 1-CPU machine that is a *single* shard thread driving
//! all 2048 engines).

use hc3i_core::{AppPayload, SeqNum};
use netsim::NodeId;
use runtime::{Federation, HeartbeatConfig, RtEvent, RuntimeConfig};
use std::time::{Duration, Instant};

fn n(c: u16, r: u32) -> NodeId {
    NodeId::new(c, r)
}

/// Send `count` messages ring-wise across clusters starting at `tag0`;
/// wait until every one is delivered.
fn traffic_wave(fed: &Federation, clusters: usize, per_cluster: u32, tag0: u64, count: u64) {
    let mut expected = std::collections::HashSet::new();
    for k in 0..count {
        let tag = tag0 + k;
        let c = (k as usize % clusters) as u16;
        let r = (k as u32 / 7) % per_cluster;
        let to_c = ((c as usize + 1) % clusters) as u16;
        let to_r = (r + 3) % per_cluster;
        expected.insert(tag);
        fed.send_app(n(c, r), n(to_c, to_r), AppPayload { bytes: 256, tag });
    }
    let seen = fed
        .wait_for(Duration::from_secs(120), |e| {
            if let RtEvent::Delivered { payload, .. } = e {
                expected.remove(&payload.tag);
            }
            expected.is_empty()
        })
        .unwrap_or_else(|| {
            panic!(
                "wave at tag0={tag0}: {} of {count} messages undelivered: {:?}",
                expected.len(),
                expected.iter().take(8).collect::<Vec<_>>()
            )
        });
    assert!(!seen.is_empty());
}

/// The stress scenario at a given scale: saturate with cross-cluster
/// traffic, fail-stop a node and let the shard-tick heartbeat find it,
/// then verify the federation still works and every cluster is coherent.
fn waves_and_autonomous_recovery(
    clusters: usize,
    per_cluster: u32,
    wave: u64,
    shards: Option<usize>,
) {
    let t0 = Instant::now();
    let mut cfg = RuntimeConfig::manual(vec![per_cluster; clusters])
        .with_heartbeat(HeartbeatConfig::default());
    if let Some(s) = shards {
        cfg = cfg.with_shards(s);
    }
    let fed = Federation::spawn(cfg);

    // Wave 1: saturate the shard channels with cross-cluster traffic
    // (forces CLCs in every cluster via the CIC rule).
    traffic_wave(&fed, clusters, per_cluster, 0, wave);

    // Fail-stop one node and let the *heartbeat probes* find it — no
    // controller-driven detection here.
    let victim = n((clusters as u16).saturating_sub(2), 10 % per_cluster);
    fed.fail(victim);
    fed.wait_for(
        Duration::from_secs(60),
        |e| matches!(e, RtEvent::RolledBack { node, .. } if *node == victim),
    )
    .expect("heartbeat detection must roll the cluster back and revive the victim");

    // Let the rollback cascade finish cluster-wide before resuming
    // traffic: the victim's RolledBack event races its co-members'
    // rollbacks, and a send logged by a node that then rolls back is
    // (correctly) discarded as lost work.
    fed.quiesce(4, Duration::from_secs(60));

    // Wave 2: the federation still works end-to-end after recovery.
    traffic_wave(&fed, clusters, per_cluster, wave, wave);

    // Flush in-flight acks, then check cluster coherence at shutdown.
    let answered = fed.quiesce(4, Duration::from_secs(60));
    assert_eq!(answered, clusters * per_cluster as usize);
    let pool = fed.shards();
    let engines = fed.shutdown();
    for c in 0..clusters as u16 {
        let sn0 = engines[&n(c, 0)].sn();
        assert!(sn0 >= SeqNum(2), "cluster {c} never checkpointed");
        for r in 1..per_cluster {
            assert_eq!(engines[&n(c, r)].sn(), sn0, "cluster {c} incoherent");
            assert_eq!(engines[&n(c, r)].late_crossings(), 0);
        }
    }
    eprintln!(
        "stress: {} nodes on {} shard(s), {} messages, 1 autonomous recovery in {:.1?}",
        clusters * per_cluster as usize,
        pool,
        2 * wave,
        t0.elapsed()
    );
}

/// Default-run regression (reduced scale): 64 nodes multiplexed on a
/// 4-worker pool. The promoted floor of the old `--ignored`-only stress
/// test — every `cargo test` now pins the sharded executor under load.
#[test]
fn sixty_four_nodes_on_four_shards_recover_from_faults() {
    waves_and_autonomous_recovery(4, 16, 256, Some(4));
}

#[test]
#[ignore = "stress scale: 256 nodes; run explicitly"]
fn hundreds_of_nodes_with_heartbeat_recover_from_faults() {
    waves_and_autonomous_recovery(4, 64, 512, None);
}

/// North-star scale: a 2048-node federation on the default fixed pool
/// (≤ `available_parallelism` worker threads — thread-per-node would need
/// 2048 plus detectors).
#[test]
#[ignore = "stress scale: 2048 nodes; run explicitly"]
fn two_thousand_nodes_on_a_fixed_pool() {
    waves_and_autonomous_recovery(8, 256, 1024, None);
}

/// GC-heavy north-star scale: 128 clusters × 16 nodes, stores grown over
/// several wave+checkpoint rounds, then repeated federation-wide garbage
/// collections. This drives the zero-clone GC data plane — `Arc`-shared
/// `(SN, DDV)` stamp lists collected from 128 coordinators, the k-failure
/// minimum-SN analysis over all of them, and cluster-wide pruning — at a
/// scale where the old deep-clone-per-stamp collection was measurable.
/// Verified through [`Federation::report`], exercising the runtime report
/// surface at scale too.
#[test]
#[ignore = "stress scale: 2048 nodes, GC-heavy; run explicitly"]
fn gc_heavy_two_thousand_nodes() {
    const CLUSTERS: usize = 128;
    const PER: u32 = 16;
    const WAVE: u64 = 2048;
    const ROUNDS: u64 = 3;
    const GC_ROUNDS: usize = 2;
    let t0 = Instant::now();
    let fed = Federation::spawn(RuntimeConfig::manual(vec![PER; CLUSTERS]));

    // Grow every cluster's CLC store: cross-cluster waves force CLCs via
    // the CIC rule, and an explicit checkpoint per cluster per round adds
    // unforced ones on top.
    for round in 0..ROUNDS {
        traffic_wave(&fed, CLUSTERS, PER, round * WAVE, WAVE);
        for c in 0..CLUSTERS {
            fed.checkpoint_now(c);
        }
        let mut committed = std::collections::HashSet::new();
        fed.wait_for(Duration::from_secs(120), |e| {
            if let RtEvent::Committed { cluster, .. } = e {
                committed.insert(*cluster);
            }
            committed.len() == CLUSTERS
        })
        .expect("every cluster commits its explicit CLC");
    }

    // Repeated federation-wide collections: every round must report from
    // all 128 clusters.
    for _ in 0..GC_ROUNDS {
        fed.quiesce(4, Duration::from_secs(60));
        fed.gc_now();
        let mut reported = std::collections::HashSet::new();
        fed.wait_for(Duration::from_secs(120), |e| {
            if let RtEvent::GcReport { cluster, .. } = e {
                reported.insert(*cluster);
            }
            reported.len() == CLUSTERS
        })
        .expect("every cluster reports a GC round");
    }

    let answered = fed.quiesce(4, Duration::from_secs(60));
    assert_eq!(answered, CLUSTERS * PER as usize);
    let pool = fed.shards();
    let report = fed.report();
    assert_eq!(report.app_delivered, ROUNDS * WAVE);
    for (c, stats) in report.clusters.iter().enumerate() {
        assert_eq!(
            stats.gc_before_after.len(),
            GC_ROUNDS,
            "cluster {c} missed a GC round"
        );
        assert!(
            stats.unforced_clcs >= ROUNDS,
            "cluster {c} missed explicit checkpoints"
        );
        let (_, after) = *stats.gc_before_after.last().unwrap();
        assert!(
            after <= stats.peak_stored_clcs,
            "cluster {c}: GC never pruned below the peak"
        );
        assert!(stats.stored_clcs >= 1, "cluster {c} lost its latest CLC");
    }
    eprintln!(
        "gc stress: {} nodes on {} shard(s), {} messages, {} GC rounds in {:.1?}",
        CLUSTERS * PER as usize,
        pool,
        ROUNDS * WAVE,
        GC_ROUNDS,
        t0.elapsed()
    );
}
