//! Threaded-runtime stress test (ROADMAP open item): hundreds of node
//! threads with autonomous heartbeat detection, to smoke out mailbox and
//! detector bottlenecks ahead of any async-transport refactor.
//!
//! Ignored by default — run with:
//!
//! ```text
//! cargo test -p runtime --test stress -- --ignored --nocapture
//! ```

use hc3i_core::{AppPayload, SeqNum};
use netsim::NodeId;
use runtime::{Federation, HeartbeatConfig, RtEvent, RuntimeConfig};
use std::time::{Duration, Instant};

const CLUSTERS: usize = 4;
const NODES_PER_CLUSTER: u32 = 64; // 256 node threads + 4 detector threads
const WAVE: u64 = 512;

fn n(c: u16, r: u32) -> NodeId {
    NodeId::new(c, r)
}

/// Send `count` messages ring-wise across clusters starting at `tag0`;
/// wait until every one is delivered.
fn traffic_wave(fed: &Federation, tag0: u64, count: u64) {
    let mut expected = std::collections::HashSet::new();
    for k in 0..count {
        let tag = tag0 + k;
        let c = (k as usize % CLUSTERS) as u16;
        let r = (k as u32 / 7) % NODES_PER_CLUSTER;
        let to_c = ((c as usize + 1) % CLUSTERS) as u16;
        let to_r = (r + 3) % NODES_PER_CLUSTER;
        expected.insert(tag);
        fed.send_app(n(c, r), n(to_c, to_r), AppPayload { bytes: 256, tag });
    }
    let seen = fed
        .wait_for(Duration::from_secs(60), |e| {
            if let RtEvent::Delivered { payload, .. } = e {
                expected.remove(&payload.tag);
            }
            expected.is_empty()
        })
        .expect("every message of the wave must be delivered");
    assert!(!seen.is_empty());
}

#[test]
#[ignore = "stress scale: 256 node threads; run explicitly"]
fn hundreds_of_nodes_with_heartbeat_recover_from_faults() {
    let t0 = Instant::now();
    let cfg = RuntimeConfig::manual(vec![NODES_PER_CLUSTER; CLUSTERS])
        .with_heartbeat(HeartbeatConfig::default());
    let fed = Federation::spawn(cfg);

    // Wave 1: saturate the mailboxes with cross-cluster traffic (forces
    // CLCs in every cluster via the CIC rule).
    traffic_wave(&fed, 0, WAVE);

    // Fail-stop one node and let the *heartbeat detector* find it — no
    // controller-driven detection here.
    let victim = n(2, 10);
    fed.fail(victim);
    fed.wait_for(Duration::from_secs(30), |e| {
        matches!(e, RtEvent::RolledBack { node, .. } if *node == victim)
    })
    .expect("heartbeat detection must roll the cluster back and revive the victim");

    // Wave 2: the federation still works end-to-end after recovery.
    traffic_wave(&fed, WAVE, WAVE);

    // Flush in-flight acks, then check cluster coherence at shutdown.
    let answered = fed.quiesce(4, Duration::from_secs(30));
    assert_eq!(answered, CLUSTERS * NODES_PER_CLUSTER as usize);
    let engines = fed.shutdown();
    for c in 0..CLUSTERS as u16 {
        let sn0 = engines[&n(c, 0)].sn();
        assert!(sn0 >= SeqNum(2), "cluster {c} never checkpointed");
        for r in 1..NODES_PER_CLUSTER {
            assert_eq!(engines[&n(c, r)].sn(), sn0, "cluster {c} incoherent");
            assert_eq!(engines[&n(c, r)].late_crossings(), 0);
        }
    }
    eprintln!(
        "stress: {} nodes, {} messages, 1 autonomous recovery in {:.1?}",
        CLUSTERS * NODES_PER_CLUSTER as usize,
        2 * WAVE,
        t0.elapsed()
    );
}
