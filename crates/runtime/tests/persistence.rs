//! Persisting a live federation's checkpoint stores to disk and back.

use hc3i_core::{persist, AppPayload, SeqNum};
use netsim::NodeId;
use runtime::{CounterApp, Federation, RtEvent, RuntimeConfig};
use std::time::Duration;

#[test]
fn engine_store_survives_a_disk_round_trip() {
    let fed = Federation::spawn(
        RuntimeConfig::manual(vec![2, 2]).with_app(|_| Box::new(CounterApp::new())),
    );
    let n = NodeId::new;

    // Build up real state: a forced CLC with an app snapshot inside.
    fed.send_app(n(0, 0), n(1, 1), AppPayload { bytes: 128, tag: 1 });
    fed.wait_for(
        Duration::from_secs(5),
        |e| matches!(e, RtEvent::Delivered { payload, .. } if payload.tag == 1),
    )
    .expect("delivery");
    fed.checkpoint_now(1);
    fed.wait_for(
        Duration::from_secs(5),
        |e| matches!(e, RtEvent::Committed { cluster: 1, sn, .. } if *sn == SeqNum(3)),
    )
    .expect("second checkpoint");

    let engines = fed.shutdown();
    let store = engines[&n(1, 1)].store();
    assert_eq!(store.len(), 3, "initial + forced + manual");

    let path =
        std::env::temp_dir().join(format!("hc3i-runtime-persist-{}.clc", std::process::id()));
    persist::save_store(store, &path).expect("save");
    let restored = persist::load_store(&path).expect("load");
    std::fs::remove_file(&path).ok();

    assert_eq!(restored.len(), store.len());
    assert_eq!(restored.ddv_list(), store.ddv_list());
    // The manual CLC captured the post-delivery application snapshot.
    let latest = restored.latest().expect("latest");
    let app_state = latest.payload.app_state.as_ref().expect("app snapshot");
    let mut app = CounterApp::new();
    use runtime::Application;
    app.restore(Some(app_state));
    assert_eq!(app.count, 1, "snapshot contains the delivery");
    // The forced CLC (SN 2) predates the delivery.
    let forced = restored.get(SeqNum(2)).expect("forced CLC");
    assert!(forced.meta.forced);
    if let Some(state) = &forced.payload.app_state {
        let mut before = CounterApp::new();
        before.restore(Some(state));
        assert_eq!(before.count, 0, "pre-delivery snapshot");
    }
}
