//! Autonomous failure detection: the heartbeat detector notices a
//! fail-stopped node without any controller intervention and recovery
//! proceeds on its own.

use hc3i_core::{AppPayload, ProtocolConfig, SeqNum};
use netsim::NodeId;
use runtime::{Federation, HeartbeatConfig, RtEvent, RuntimeConfig};
use std::time::Duration;

fn n(c: u16, r: u32) -> NodeId {
    NodeId::new(c, r)
}

fn hb() -> HeartbeatConfig {
    HeartbeatConfig {
        period: Duration::from_millis(20),
        timeout: Duration::from_millis(15),
    }
}

#[test]
fn fault_detected_and_recovered_autonomously() {
    let fed = Federation::spawn(RuntimeConfig::manual(vec![3, 2]).with_heartbeat(hb()));
    // Give the cluster a checkpoint beyond the initial one.
    fed.checkpoint_now(0);
    fed.wait_for(Duration::from_secs(5), |e| {
        matches!(e, RtEvent::Committed { cluster: 0, .. })
    })
    .expect("checkpoint");

    // Fail a node — and do NOT call detect(): the heartbeat must find it.
    fed.fail(n(0, 2));
    fed.wait_for(Duration::from_secs(10), |e| {
        matches!(e, RtEvent::RolledBack { node, restore_sn, .. }
            if *node == n(0, 2) && *restore_sn == SeqNum(2))
    })
    .expect("autonomous detection and recovery");

    let engines = fed.shutdown();
    assert!(!engines[&n(0, 2)].is_failed(), "revived");
    assert_eq!(engines[&n(0, 0)].sn(), SeqNum(2));
}

#[test]
fn refailure_right_after_recovery_is_redetected() {
    // Fail → autonomous recovery → immediately fail again, three times.
    // The refailure typically lands inside the same probe period as the
    // revival, so the probe never observes the alive window — the
    // failure-generation counter (not parity alone) is what makes the
    // second failure reportable.
    let fed = Federation::spawn(RuntimeConfig::manual(vec![3, 2]).with_heartbeat(hb()));
    let victim = n(0, 2);
    for round in 0..3 {
        fed.fail(victim);
        fed.wait_for(
            Duration::from_secs(10),
            |e| matches!(e, RtEvent::RolledBack { node, .. } if *node == victim),
        )
        .unwrap_or_else(|| panic!("round {round}: failure must be (re-)detected"));
        // Settle the rollback, then refail without waiting out a period.
        fed.quiesce(2, Duration::from_secs(5));
    }
    let engines = fed.shutdown();
    assert!(
        !engines[&victim].is_failed(),
        "revived after the last round"
    );
}

#[test]
fn healthy_federation_sees_no_spurious_rollbacks() {
    let fed = Federation::spawn(RuntimeConfig::manual(vec![2, 2]).with_heartbeat(hb()));
    // Exchange some traffic while the detector probes in the background.
    for k in 0..20u64 {
        fed.send_app(n(0, 0), n(0, 1), AppPayload { bytes: 32, tag: k });
    }
    std::thread::sleep(Duration::from_millis(300)); // ~15 probe rounds
    let events = fed.drain_events();
    assert!(
        events
            .iter()
            .all(|e| !matches!(e, RtEvent::RolledBack { .. })),
        "spurious rollback: {events:?}"
    );
    fed.shutdown();
}

#[test]
fn double_fault_with_degree_two_replication_recovers() {
    // Adjacent double fault: unrecoverable at degree 1, fine at degree 2.
    let cfg = RuntimeConfig::manual(vec![4, 2])
        .with_protocol(
            ProtocolConfig::new(vec![4, 2])
                .with_replication(hc3i_core::ReplicationPolicy::with_degree(2)),
        )
        .with_heartbeat(hb());
    let fed = Federation::spawn(cfg);
    fed.fail(n(0, 1));
    fed.fail(n(0, 2));
    // Both revived by the (single) cluster rollback the detector triggers.
    let mut revived = std::collections::HashSet::new();
    fed.wait_for(Duration::from_secs(10), |e| {
        if let RtEvent::RolledBack { node, .. } = e {
            revived.insert(*node);
        }
        revived.contains(&n(0, 1)) && revived.contains(&n(0, 2))
    })
    .expect("both failed nodes recovered");
    let engines = fed.shutdown();
    assert!(!engines[&n(0, 1)].is_failed());
    assert!(!engines[&n(0, 2)].is_failed());
}

#[test]
fn double_adjacent_fault_at_degree_one_is_reported_or_masked() {
    let fed = Federation::spawn(RuntimeConfig::manual(vec![3, 2]).with_heartbeat(hb()));
    // Ranks 1 and 2: rank 1's only replica holder is rank 2 (degree 1).
    // Two outcomes are legitimate, depending on how the faults land on
    // probe rounds:
    //  * both missed in one round -> the pair is unrecoverable at degree 1;
    //  * split across rounds -> the first rollback's RollbackOrder revives
    //    both nodes before the second is ever examined (the fault was
    //    masked by recovery — effectively two sequential single faults).
    fed.fail(n(0, 1));
    fed.fail(n(0, 2));
    let mut revived = std::collections::HashSet::new();
    let outcome = fed.wait_for(Duration::from_secs(10), |e| {
        if let RtEvent::RolledBack { node, .. } = e {
            revived.insert(*node);
        }
        matches!(e, RtEvent::Unrecoverable { cluster: 0, .. })
            || (revived.contains(&n(0, 1)) && revived.contains(&n(0, 2)))
    });
    assert!(outcome.is_some(), "neither unrecoverable nor recovered");
    fed.shutdown();
}
