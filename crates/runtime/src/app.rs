//! Pluggable node applications with checkpointed state.
//!
//! The protocol engine treats application state as an opaque blob
//! (paper §2.1: "a process state consists of all the data it needs to be
//! restarted"). An [`Application`] runs inside its node's shard worker: it
//! observes deliveries, publishes serialized snapshots that the engine
//! captures into every staged checkpoint, and is restored from the
//! checkpointed snapshot after a rollback.

use hc3i_core::AppPayload;
use netsim::NodeId;

/// A node-local application driven by the threaded runtime.
pub trait Application: Send {
    /// A message was delivered to this node.
    fn on_deliver(&mut self, from: NodeId, payload: AppPayload);

    /// Serialize the current state (captured into staged checkpoints).
    fn snapshot(&self) -> Vec<u8>;

    /// Restore from a checkpointed snapshot (`None` = the checkpoint
    /// predates any snapshot: reset to the initial state).
    fn restore(&mut self, state: Option<&[u8]>);
}

/// A simple checkpointable application used by the examples and tests: it
/// counts deliveries and keeps an order-sensitive digest of the payload
/// tags it has seen.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CounterApp {
    /// Number of deliveries applied to the current state.
    pub count: u64,
    /// Order-sensitive digest of delivered tags.
    pub digest: u64,
}

impl CounterApp {
    /// Fresh application state.
    pub fn new() -> Self {
        Self::default()
    }

    fn mix(digest: u64, tag: u64) -> u64 {
        digest
            .rotate_left(7)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(tag)
    }
}

impl Application for CounterApp {
    fn on_deliver(&mut self, _from: NodeId, payload: AppPayload) {
        self.count += 1;
        self.digest = Self::mix(self.digest, payload.tag);
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        buf.extend_from_slice(&self.count.to_le_bytes());
        buf.extend_from_slice(&self.digest.to_le_bytes());
        buf
    }

    fn restore(&mut self, state: Option<&[u8]>) {
        match state {
            Some(bytes) if bytes.len() == 16 => {
                self.count = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
                self.digest = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
            }
            _ => *self = CounterApp::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pay(tag: u64) -> AppPayload {
        AppPayload { bytes: 1, tag }
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut a = CounterApp::new();
        a.on_deliver(NodeId::new(0, 0), pay(3));
        a.on_deliver(NodeId::new(0, 1), pay(9));
        let snap = a.snapshot();
        a.on_deliver(NodeId::new(1, 0), pay(27));
        assert_eq!(a.count, 3);
        let mut b = CounterApp::new();
        b.restore(Some(&snap));
        assert_eq!(b.count, 2);
        let mut reference = CounterApp::new();
        reference.on_deliver(NodeId::new(0, 0), pay(3));
        reference.on_deliver(NodeId::new(0, 1), pay(9));
        assert_eq!(b, reference);
    }

    #[test]
    fn restore_none_resets() {
        let mut a = CounterApp::new();
        a.on_deliver(NodeId::new(0, 0), pay(1));
        a.restore(None);
        assert_eq!(a, CounterApp::new());
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = CounterApp::new();
        a.on_deliver(NodeId::new(0, 0), pay(1));
        a.on_deliver(NodeId::new(0, 0), pay(2));
        let mut b = CounterApp::new();
        b.on_deliver(NodeId::new(0, 0), pay(2));
        b.on_deliver(NodeId::new(0, 0), pay(1));
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn corrupt_snapshot_resets() {
        let mut a = CounterApp::new();
        a.on_deliver(NodeId::new(0, 0), pay(1));
        a.restore(Some(&[1, 2, 3]));
        assert_eq!(a, CounterApp::new());
    }
}
