//! Folding the runtime's event stream into the simulator's report shape.
//!
//! `tests/runtime_equivalence.rs` used to rebuild a `RunReport`-style
//! fingerprint from raw [`RtEvent`]s by hand; this module promotes that
//! bookkeeping into the crate so any controller — the equivalence tests,
//! the CLI's `--runtime` mode, a benchmark — can drive the live substrate
//! and obtain the same [`simdriver::RunReport`] the discrete-event
//! simulator emits.
//!
//! Every event that passes through [`Federation::next_event`],
//! [`Federation::wait_for`] or [`Federation::drain_events`] is folded into
//! an internal collector; [`Federation::report`] drains what is left,
//! shuts the pool down and finalizes the per-cluster storage/log occupancy
//! from the joined engines.
//!
//! ## Which fields are live-substrate faithful
//!
//! The deterministic protocol outcomes — commits by kind, rollback restore
//! SNs and discard counts, GC before/after, deliveries, soundness counters,
//! end-of-run storage and log occupancy — match the simulator bit-for-bit
//! on equivalent scenarios (property-tested at shard counts {1, 2, 8}).
//! Wall-clock-derived fields (`ended_at`, rollback timestamps, work-lost
//! durations) carry real elapsed time, and wire-byte counters stay zero:
//! the in-process transport ships `Msg` values, not serialized bytes, so
//! the runtime does not guess at a byte model the simulator owns.
//!
//! [`Federation::next_event`]: crate::Federation::next_event
//! [`Federation::wait_for`]: crate::Federation::wait_for
//! [`Federation::drain_events`]: crate::Federation::drain_events
//! [`Federation::report`]: crate::Federation::report

use crate::envelope::RtEvent;
use desim::{SimDuration, SimTime};
use hc3i_core::NodeEngine;
use netsim::NodeId;
use simdriver::{ClusterStats, RunReport};
use std::collections::HashMap;
use std::time::Instant;

/// Accumulates [`RtEvent`]s into [`RunReport`] fields as they are observed.
pub(crate) struct ReportCollector {
    clusters: Vec<ClusterStats>,
    app_matrix: Vec<Vec<u64>>,
    app_sent: u64,
    app_delivered: u64,
    late_crossings: u64,
    unrecoverable_faults: u64,
    events_seen: u64,
}

impl ReportCollector {
    pub(crate) fn new(n_clusters: usize) -> Self {
        ReportCollector {
            clusters: vec![ClusterStats::default(); n_clusters],
            app_matrix: vec![vec![0; n_clusters]; n_clusters],
            app_sent: 0,
            app_delivered: 0,
            late_crossings: 0,
            unrecoverable_faults: 0,
            events_seen: 0,
        }
    }

    /// Record one controller-injected application send.
    pub(crate) fn note_send(&mut self) {
        self.app_sent += 1;
    }

    /// Fold one observed event. `epoch` is the federation's spawn instant;
    /// the wall-clock offset (the runtime's analogue of simulated time) is
    /// only computed for the rare events that record a timestamp, keeping
    /// the per-event fold off the clock on the hot drain path.
    pub(crate) fn observe(&mut self, ev: &RtEvent, epoch: Instant) {
        self.events_seen += 1;
        match ev {
            RtEvent::Delivered { to, from, .. } => {
                self.app_delivered += 1;
                // The live substrate counts end-to-end deliveries per
                // cluster pair (it has no wire tap for sends in flight).
                self.app_matrix[from.cluster.index()][to.cluster.index()] += 1;
            }
            RtEvent::Committed {
                cluster, forced, ..
            } => {
                let c = &mut self.clusters[*cluster];
                if *forced {
                    c.forced_clcs += 1;
                } else {
                    c.unforced_clcs += 1;
                }
            }
            RtEvent::RolledBack {
                node,
                restore_sn,
                discarded_clcs,
            } => {
                // One entry per cluster rollback, reported by rank 0 —
                // the same convention the simulator's report uses.
                if node.rank == 0 {
                    let at = SimTime(epoch.elapsed().as_nanos() as u64);
                    let c = &mut self.clusters[node.cluster.index()];
                    c.rollbacks.push((at, *restore_sn, *discarded_clcs));
                    // Real work-lost durations need the restored CLC's
                    // commit time, which the event stream does not carry.
                    c.work_lost.push(SimDuration::ZERO);
                }
            }
            RtEvent::GcReport {
                cluster,
                before,
                after,
            } => {
                self.clusters[*cluster]
                    .gc_before_after
                    .push((*before, *after));
            }
            RtEvent::Unrecoverable { .. } => self.unrecoverable_faults += 1,
            RtEvent::LateCrossing { .. } => self.late_crossings += 1,
        }
    }

    /// Produce the final report from the accumulated events plus the
    /// joined engines' end-of-run storage and log occupancy.
    pub(crate) fn finalize(
        mut self,
        engines: &HashMap<NodeId, NodeEngine>,
        cluster_sizes: &[u32],
        ended_at: SimTime,
    ) -> RunReport {
        for (c, stats) in self.clusters.iter_mut().enumerate() {
            let coord = NodeId::new(c as u16, 0);
            if let Some(e) = engines.get(&coord) {
                stats.stored_clcs = e.store().len();
                stats.peak_stored_clcs = e.store().peak();
            }
            let ranks = 0..cluster_sizes[c];
            stats.logged_messages = ranks
                .clone()
                .filter_map(|r| engines.get(&NodeId::new(c as u16, r)))
                .map(|e| e.log().len() as u64)
                .sum();
            stats.peak_logged_messages = ranks
                .filter_map(|r| engines.get(&NodeId::new(c as u16, r)))
                .map(|e| e.log().peak() as u64)
                .sum();
        }
        RunReport {
            clusters: self.clusters,
            app_delivered: self.app_delivered,
            app_sent: self.app_sent,
            app_matrix: self.app_matrix,
            late_crossings: self.late_crossings,
            unrecoverable_faults: self.unrecoverable_faults,
            events_processed: self.events_seen,
            ended_at,
            // The in-process transport has no byte model; see module docs.
            protocol_messages: 0,
            protocol_bytes: 0,
            ack_messages: 0,
            ack_bytes: 0,
            app_bytes: 0,
        }
    }
}
