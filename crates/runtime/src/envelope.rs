//! Wire envelopes and controller-visible events of the threaded runtime.

use crossbeam::channel::Sender;
use hc3i_core::{AppPayload, Msg, SeqNum};
use netsim::NodeId;

/// What a node can receive in its (shard-multiplexed) mailbox.
#[derive(Debug, Clone)]
pub enum Envelope {
    /// A protocol message from another node.
    Net {
        /// Sending node.
        from: NodeId,
        /// The message.
        msg: Msg,
    },
    /// The local application wants to send.
    AppSend {
        /// Destination node.
        to: NodeId,
        /// Payload.
        payload: AppPayload,
    },
    /// Take an unforced CLC now (coordinator mailbox).
    ClcNow,
    /// Run a garbage collection now (GC initiator mailbox).
    GcNow,
    /// Fail-stop this node.
    Fail,
    /// The failure detector reports `failed_rank` down.
    Detect {
        /// Failed rank within this node's cluster.
        failed_rank: u32,
    },
    /// The failure detector reports several simultaneous failures.
    DetectMulti {
        /// Failed ranks within this node's cluster.
        failed_ranks: Vec<u32>,
    },
    /// Liveness probe (the controller's quiesce barrier). A healthy node
    /// replies `(rank, seq)` on the channel; a fail-stopped node stays
    /// silent.
    Ping {
        /// Probe sequence number.
        seq: u64,
        /// Where to send the pong.
        reply: Sender<(u32, u64)>,
    },
    /// Stop the node: its shard drops every later envelope addressed to it
    /// and returns its engine at join.
    Shutdown,
}

/// Observable events streamed to the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtEvent {
    /// `to` delivered an application payload originally sent by `from`.
    Delivered {
        /// Receiving node.
        to: NodeId,
        /// Original sender.
        from: NodeId,
        /// The payload.
        payload: AppPayload,
    },
    /// A CLC committed.
    Committed {
        /// Cluster index.
        cluster: usize,
        /// Committed sequence number.
        sn: SeqNum,
        /// Communication-induced?
        forced: bool,
    },
    /// A node restored a checkpoint.
    RolledBack {
        /// The node.
        node: NodeId,
        /// Restored sequence number.
        restore_sn: SeqNum,
        /// How many newer CLCs the restore discarded.
        discarded_clcs: usize,
    },
    /// Garbage collection ran on a cluster.
    GcReport {
        /// Cluster index.
        cluster: usize,
        /// Stored CLCs before.
        before: usize,
        /// Stored CLCs after.
        after: usize,
    },
    /// A fault exceeded the replication degree.
    Unrecoverable {
        /// Cluster index.
        cluster: usize,
        /// The unrecoverable rank.
        rank: u32,
    },
    /// Consistency-monitor alarm (should never fire).
    LateCrossing {
        /// Observing node.
        node: NodeId,
    },
}
