//! The shard worker: one OS thread multiplexing many node engines.
//!
//! Each worker owns a fixed set of [`NodeCell`]s (assigned round-robin by
//! cluster-major global index — see the crate docs for the determinism
//! contract) and drains one MPMC channel carrying `(slot, Envelope)`
//! pairs. A sender pushes every envelope for a given destination into that
//! destination's shard channel, so per-sender FIFO — the paper's network
//! assumption, and the property the old one-thread-per-node mailboxes
//! provided — is preserved: a worker processes its channel in arrival
//! order.
//!
//! Between messages the worker *ticks*: it fires any due per-node CLC
//! timers and runs the heartbeat probes of the clusters it homes
//! ([`ClusterProbe`]), sleeping via `recv_deadline` until the earliest
//! pending deadline when idle. One reusable [`OutputBuf`] and dispatch
//! queue serve all nodes of the shard, so steady-state message processing
//! allocates nothing per event.

use crate::app::Application;
use crate::detector::ClusterProbe;
use crate::envelope::{Envelope, RtEvent};
use crate::federation::{Health, NodeFinalState, Routes, SharedDurable};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use desim::SimTime;
use hc3i_core::{
    Input, Msg, NodeEngine, Output, OutputBuf, ReceiverChannel, SenderChannel, XportConfig,
};
use netsim::NodeId;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One node multiplexed onto a shard: the engine plus its runtime-side
/// timer and application state.
pub(crate) struct NodeCell {
    pub(crate) id: NodeId,
    /// Cluster-major global arena index (health-table slot).
    pub(crate) gidx: usize,
    pub(crate) engine: NodeEngine,
    pub(crate) app: Option<Box<dyn Application>>,
    pub(crate) clc_delay: Option<Duration>,
    pub(crate) clc_deadline: Option<Instant>,
    /// Last fail-stop state published to the shared health table; the
    /// table is only written on transitions, never per input.
    pub(crate) published_failed: bool,
    /// Set by `Envelope::Shutdown`; a stopped node drops every later
    /// envelope, exactly as a joined node thread used to.
    pub(crate) stopped: bool,
}

/// Host-level reliable-transport state of one shard: sender channels for
/// the shard's own nodes' outgoing inter-cluster traffic, receiver
/// channels for what arrives here. Both sides of a directed node pair
/// live on the pair's respective owning shards, so no state is shared
/// across workers. Retransmissions are driven by [`ShardWorker::tick`]
/// against a cached earliest-deadline bound, exactly like the CLC timers.
pub(crate) struct ShardXport {
    cfg: XportConfig,
    /// `(local sender, remote destination)` → sender channel.
    senders: HashMap<(NodeId, NodeId), SenderChannel>,
    /// `(remote sender, local destination)` → receiver dedup state.
    receivers: HashMap<(NodeId, NodeId), ReceiverChannel>,
    /// Lower bound on the earliest retransmission deadline; `None` when
    /// nothing is in flight. Maintained like `ShardWorker::next_clc`.
    next_retry: Option<Instant>,
}

impl ShardXport {
    fn new(cfg: XportConfig) -> Self {
        ShardXport {
            cfg,
            senders: HashMap::new(),
            receivers: HashMap::new(),
            next_retry: None,
        }
    }
}

pub(crate) struct ShardWorker {
    nodes: Vec<NodeCell>,
    /// Slots that ever arm a CLC deadline (timer scans skip the rest).
    timer_slots: Vec<usize>,
    rx: Receiver<(u32, Envelope)>,
    routes: Arc<Routes>,
    health: Arc<Health>,
    events: Sender<RtEvent>,
    epoch: Instant,
    probes: Vec<ClusterProbe>,
    /// Reusable sink the engines emit into (same API the simulator
    /// drives; zero allocation per input).
    buf: OutputBuf,
    /// Reusable dispatch queue: outputs under processing, including
    /// follow-ups emitted by `AppStateUpdate` re-entries.
    work: VecDeque<Output>,
    /// Lower bound on the earliest armed CLC deadline. Arming only ever
    /// lowers it (O(1) on the message path); the exact minimum is
    /// recomputed only when it comes due — so a waking worker may scan
    /// the timer slots and find nothing to fire (a deadline was replaced
    /// by a later one), but a due timer is never missed.
    next_clc: Option<Instant>,
    /// Nodes not yet stopped; the worker exits when this reaches zero.
    live: usize,
    /// Reliable-transport state; `None` leaves the envelope traffic of a
    /// transport-free federation untouched.
    xport: Option<ShardXport>,
    /// The federation's shared on-disk segment log; `None` keeps every
    /// CLC store in memory only. Appends happen on the engine's
    /// durability hooks (`StoreCommitted`/`StorePruned`/`RolledBack`),
    /// under the lock — a node lives on exactly one shard, so its frames
    /// land in emission order.
    durable: Option<SharedDurable>,
}

impl ShardWorker {
    pub(crate) fn new(
        nodes: Vec<NodeCell>,
        rx: Receiver<(u32, Envelope)>,
        routes: Arc<Routes>,
        health: Arc<Health>,
        events: Sender<RtEvent>,
        epoch: Instant,
        probes: Vec<ClusterProbe>,
    ) -> Self {
        let timer_slots: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.clc_delay.is_some())
            .map(|(s, _)| s)
            .collect();
        let next_clc = nodes.iter().filter_map(|c| c.clc_deadline).min();
        let live = nodes.len();
        ShardWorker {
            nodes,
            timer_slots,
            rx,
            routes,
            health,
            events,
            epoch,
            probes,
            buf: OutputBuf::new(),
            work: VecDeque::new(),
            next_clc,
            live,
            xport: None,
            durable: None,
        }
    }

    /// Enable the reliable transport for this shard's inter-cluster
    /// traffic (chained at construction; `None` is a no-op).
    pub(crate) fn with_xport(mut self, cfg: Option<XportConfig>) -> Self {
        self.xport = cfg.map(ShardXport::new);
        self
    }

    /// Attach the federation's shared durable segment log (chained at
    /// construction; `None` is a no-op).
    pub(crate) fn with_durable(mut self, durable: Option<SharedDurable>) -> Self {
        self.durable = durable;
        self
    }

    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_nanos() as u64)
    }

    /// Drain the shard until every owned node has been shut down; return
    /// the final engine (and application) of each.
    pub(crate) fn run(mut self) -> Vec<(NodeId, NodeFinalState)> {
        while self.live > 0 {
            let msg = match self.next_deadline() {
                Some(deadline) => match self.rx.recv_deadline(deadline) {
                    Ok(m) => Some(m),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                },
                None => match self.rx.recv() {
                    Ok(m) => Some(m),
                    Err(_) => break,
                },
            };
            if let Some((slot, env)) = msg {
                self.handle(slot as usize, env);
            }
            self.tick();
        }
        // Commits are fsync-ed as they land ([`storage::SyncPolicy::EveryCommit`]);
        // flush any trailing truncate/prune frames on the way out.
        if let Some(d) = &self.durable {
            d.lock()
                .expect("durable log lock")
                .sync()
                .expect("sync durable log");
        }
        self.nodes
            .into_iter()
            .map(|c| (c.id, (c.engine, c.app)))
            .collect()
    }

    /// Earliest pending timer, probe or retransmission deadline, if any.
    /// O(#probes): the CLC and transport sides are cached bounds, not
    /// scans.
    fn next_deadline(&self) -> Option<Instant> {
        let mut next = self.next_clc;
        if let Some(t) = self.xport.as_ref().and_then(|x| x.next_retry) {
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        for p in &self.probes {
            let t = p.next_deadline();
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        next
    }

    /// Lower the cached CLC bound to cover a newly armed deadline.
    fn arm_clc(&mut self, deadline: Instant) {
        self.next_clc = Some(self.next_clc.map_or(deadline, |n| n.min(deadline)));
    }

    /// Fire due CLC timers and heartbeat probes. The timer-slot scan only
    /// runs when the cached bound is actually due, so per-message ticks
    /// are O(#probes).
    fn tick(&mut self) {
        let now = Instant::now();
        if self.next_clc.is_some_and(|t| t <= now) {
            self.fire_due_clcs(now);
        }
        if self
            .xport
            .as_ref()
            .is_some_and(|x| x.next_retry.is_some_and(|t| t <= now))
        {
            self.retransmit_due();
        }
        for i in 0..self.probes.len() {
            self.probes[i].tick(now, &self.routes, &self.health);
        }
    }

    /// Put every overdue in-flight copy back on the wire and refresh the
    /// cached retransmission bound to the exact minimum.
    fn retransmit_due(&mut self) {
        let now = self.now();
        let mut next: Option<SimTime> = None;
        let Some(x) = self.xport.as_mut() else { return };
        for (&(from, to), ch) in x.senders.iter_mut() {
            for (seq, msg) in ch.due(now, &x.cfg) {
                let _ = self.routes.send(
                    to,
                    Envelope::Net {
                        from,
                        msg: Msg::Reliable {
                            seq,
                            inner: Box::new(msg),
                        },
                    },
                );
            }
            if let Some(d) = ch.next_deadline() {
                next = Some(next.map_or(d, |n| n.min(d)));
            }
        }
        x.next_retry = next.map(|t| self.epoch + Duration::from_nanos(t.0));
    }

    fn fire_due_clcs(&mut self, now: Instant) {
        for i in 0..self.timer_slots.len() {
            let slot = self.timer_slots[i];
            let due = {
                let cell = &self.nodes[slot];
                !cell.stopped && cell.clc_deadline.is_some_and(|d| d <= now)
            };
            if due {
                self.nodes[slot].clc_deadline = None;
                self.input(slot, Input::ClcTimer);
                // If no commit re-armed it (e.g. this node is not the
                // coordinator), re-arm manually.
                if self.nodes[slot].clc_deadline.is_none() {
                    if let Some(d) = self.nodes[slot].clc_delay {
                        self.nodes[slot].clc_deadline = Some(Instant::now() + d);
                    }
                }
            }
        }
        // Fires and re-arms done: replace the bound with the exact minimum.
        self.next_clc = self
            .timer_slots
            .iter()
            .filter_map(|&s| {
                let cell = &self.nodes[s];
                if cell.stopped {
                    None
                } else {
                    cell.clc_deadline
                }
            })
            .min();
    }

    fn handle(&mut self, slot: usize, env: Envelope) {
        if self.nodes[slot].stopped {
            return;
        }
        let input = match env {
            // Transport frames terminate at the shard: engines never see
            // `Reliable` wrappers or `XportAck`s.
            Envelope::Net {
                from,
                msg: Msg::Reliable { seq, inner },
            } if self.xport.is_some() => {
                let me = self.nodes[slot].id;
                let fresh = self
                    .xport
                    .as_mut()
                    .expect("checked above")
                    .receivers
                    .entry((from, me))
                    .or_default()
                    .accept(seq);
                // The shard acks every copy it sees — even for a
                // fail-stopped engine, so the sender's window drains; a
                // dead node's lost deliveries are the protocol's problem
                // (sender logging + replay), not the transport's.
                let _ = self.routes.send(
                    from,
                    Envelope::Net {
                        from: me,
                        msg: Msg::XportAck { seq },
                    },
                );
                if !fresh {
                    return;
                }
                Input::Receive { from, msg: *inner }
            }
            Envelope::Net {
                from,
                msg: Msg::XportAck { seq },
            } if self.xport.is_some() => {
                self.process_ack(slot, from, seq);
                return;
            }
            Envelope::Net { from, msg } => Input::Receive { from, msg },
            Envelope::AppSend { to, payload } => Input::AppSend { to, payload },
            Envelope::ClcNow => Input::ClcTimer,
            Envelope::GcNow => Input::GcTimer,
            Envelope::Fail => Input::Fail,
            Envelope::Detect { failed_rank } => Input::DetectFault { failed_rank },
            Envelope::DetectMulti { failed_ranks } => Input::DetectFaults { failed_ranks },
            Envelope::Ping { seq, reply } => {
                // Liveness is a node property: a fail-stopped engine stays
                // silent, everyone else answers.
                if !self.nodes[slot].engine.is_failed() {
                    let _ = reply.send((self.nodes[slot].id.rank, seq));
                }
                return;
            }
            Envelope::Shutdown => {
                self.nodes[slot].stopped = true;
                self.live -= 1;
                return;
            }
        };
        self.input(slot, input);
    }

    /// Cancel an acked in-flight copy and put any window-released queued
    /// messages on the wire. The ack's receiver is the original sender,
    /// so the channel is keyed `(this node, acking peer)`.
    fn process_ack(&mut self, slot: usize, from: NodeId, seq: u64) {
        let me = self.nodes[slot].id;
        let now = self.now();
        let Some(x) = self.xport.as_mut() else { return };
        let Some(ch) = x.senders.get_mut(&(me, from)) else {
            return;
        };
        let released = ch.ack(now, &x.cfg, seq);
        let deadline = ch.next_deadline();
        for (seq, msg) in released {
            let _ = self.routes.send(
                from,
                Envelope::Net {
                    from: me,
                    msg: Msg::Reliable {
                        seq,
                        inner: Box::new(msg),
                    },
                },
            );
        }
        if let Some(d) = deadline {
            let at = self.epoch + Duration::from_nanos(d.0);
            x.next_retry = Some(x.next_retry.map_or(at, |n| n.min(at)));
        }
    }

    /// Detour one inter-cluster send through the reliable transport:
    /// assign a sequence, keep the copy in flight, wrap it in
    /// [`Msg::Reliable`] and arm the retransmission bound.
    fn xport_send(&mut self, from: NodeId, to: NodeId, msg: Msg) {
        let now = self.now();
        let Some(x) = self.xport.as_mut() else { return };
        let ch = x.senders.entry((from, to)).or_default();
        let Some(seq) = ch.send(now, &x.cfg, msg.clone()) else {
            // Window full: the channel parked the copy; it enters the
            // wire from an ack's released batch.
            return;
        };
        let deadline = ch.deadline(seq);
        let _ = self.routes.send(
            to,
            Envelope::Net {
                from,
                msg: Msg::Reliable {
                    seq,
                    inner: Box::new(msg),
                },
            },
        );
        if let Some(d) = deadline {
            let at = self.epoch + Duration::from_nanos(d.0);
            x.next_retry = Some(x.next_retry.map_or(at, |n| n.min(at)));
        }
    }

    /// Feed one input to a node's engine, perform everything it emits, and
    /// publish any fail-stop transition to the shared health table.
    fn input(&mut self, slot: usize, input: Input) {
        let now = self.now();
        self.nodes[slot].engine.handle(now, input, &mut self.buf);
        self.dispatch(slot);
        let cell = &mut self.nodes[slot];
        let failed = cell.engine.is_failed();
        if failed != cell.published_failed {
            cell.published_failed = failed;
            self.health.bump(cell.gidx);
        }
    }

    /// Perform everything the engine just emitted into `self.buf`. The
    /// buffer and the work queue are reused across inputs and nodes.
    fn dispatch(&mut self, slot: usize) {
        debug_assert!(self.work.is_empty());
        self.work.extend(self.buf.drain());
        while let Some(out) = self.work.pop_front() {
            let id = self.nodes[slot].id;
            match out {
                Output::Send { to, msg } => {
                    if self.xport.is_some() && to.cluster != id.cluster {
                        self.xport_send(id, to, msg);
                    } else {
                        // A vanished route only happens at shutdown; drop
                        // then.
                        let _ = self.routes.send(to, Envelope::Net { from: id, msg });
                    }
                }
                Output::SendFragments {
                    holders,
                    round,
                    epoch,
                } => {
                    // Expand the batched fragment fan-out into per-holder
                    // envelopes (holder order = the old per-send order).
                    for &h in holders.iter() {
                        let to = NodeId::new(id.cluster.0, h);
                        let msg = hc3i_core::Msg::FragmentReplica {
                            round,
                            owner: id.rank,
                            epoch,
                        };
                        let _ = self.routes.send(to, Envelope::Net { from: id, msg });
                    }
                }
                Output::DeliverApp { from, payload } => {
                    if self.nodes[slot].app.is_some() {
                        let snap = {
                            let app = self.nodes[slot].app.as_mut().expect("checked above");
                            app.on_deliver(from, payload);
                            app.snapshot()
                        };
                        let now = self.now();
                        self.nodes[slot].engine.handle(
                            now,
                            Input::AppStateUpdate { state: snap },
                            &mut self.buf,
                        );
                        self.work.extend(self.buf.drain());
                    }
                    let _ = self.events.send(RtEvent::Delivered {
                        to: id,
                        from,
                        payload,
                    });
                }
                Output::Committed { sn, forced } => {
                    let _ = self.events.send(RtEvent::Committed {
                        cluster: id.cluster.index(),
                        sn,
                        forced,
                    });
                }
                Output::StoreCommitted { sn } => {
                    if let Some(d) = &self.durable {
                        let cell = &self.nodes[slot];
                        let entry = cell
                            .engine
                            .store()
                            .get(sn)
                            .expect("committed CLC is stored");
                        d.lock()
                            .expect("durable log lock")
                            .append_commit(cell.gidx as u64, &entry.meta, &entry.payload)
                            .expect("durable commit append");
                    }
                }
                Output::StorePruned { min_sn } => {
                    if let Some(d) = &self.durable {
                        let gidx = self.nodes[slot].gidx as u64;
                        d.lock()
                            .expect("durable log lock")
                            .append_prune(gidx, min_sn)
                            .expect("durable prune append");
                    }
                }
                Output::ResetClcTimer => {
                    if let Some(d) = self.nodes[slot].clc_delay {
                        let deadline = Instant::now() + d;
                        self.nodes[slot].clc_deadline = Some(deadline);
                        self.arm_clc(deadline);
                    }
                }
                Output::RolledBack {
                    restore_sn,
                    discarded_clcs,
                } => {
                    if let Some(d) = &self.durable {
                        let gidx = self.nodes[slot].gidx as u64;
                        d.lock()
                            .expect("durable log lock")
                            .append_truncate(gidx, restore_sn)
                            .expect("durable truncate append");
                    }
                    let _ = self.events.send(RtEvent::RolledBack {
                        node: id,
                        restore_sn,
                        discarded_clcs,
                    });
                }
                Output::GcReport { before, after } => {
                    let _ = self.events.send(RtEvent::GcReport {
                        cluster: id.cluster.index(),
                        before,
                        after,
                    });
                }
                Output::Unrecoverable { failed_rank } => {
                    let _ = self.events.send(RtEvent::Unrecoverable {
                        cluster: id.cluster.index(),
                        rank: failed_rank,
                    });
                }
                Output::LateCrossing { .. } => {
                    let _ = self.events.send(RtEvent::LateCrossing { node: id });
                }
                Output::RestoreApp { state } => {
                    if let Some(app) = self.nodes[slot].app.as_mut() {
                        app.restore(state.as_deref());
                    }
                }
            }
        }
    }
}
