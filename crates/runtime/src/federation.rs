//! The sharded message-passing federation.
//!
//! A fixed pool of worker threads — default [`std::thread::available_parallelism`] —
//! multiplexes every node of the federation: each worker owns a shard of
//! [`NodeEngine`]s and drains one unbounded crossbeam channel of
//! `(slot, envelope)` pairs (the "hand-rolled messaging layer": reliable,
//! per-sender-FIFO — the same properties the paper assumes of its
//! network). The engines are the *identical* state machines the
//! discrete-event simulator uses; only the transport differs. The
//! controller injects application sends, checkpoints, faults and GC, and
//! observes a stream of [`RtEvent`]s.
//!
//! ## Shard-assignment determinism contract
//!
//! A node's shard is a pure function of the topology and the pool size:
//! cluster-major global index (cluster 0's ranks, then cluster 1's, …)
//! modulo the shard count — the same arena order the simulator uses.
//! Protocol state is independent of the pool size: the `engines_agree`
//! integration test and the `runtime_equivalence` property test pin that a
//! quiesced scenario reaches bit-identical engine states at 1, 2 and 8
//! shards, and identical to the instant/simulated substrates.
//!
//! ## Sizing the pool
//!
//! [`RuntimeConfig::with_shards`] overrides the default. More shards than
//! hardware threads only adds context switching; fewer trades latency for
//! locality. The pool is clamped to the node count, and thousands of nodes
//! run fine on a single shard — the executor multiplexes, it never blocks
//! on a per-node resource.

use crate::app::Application;
use crate::detector::{ClusterProbe, HeartbeatConfig};
use crate::envelope::{Envelope, RtEvent};
use crate::report::ReportCollector;
use crate::shard::{NodeCell, ShardWorker};
use crossbeam::channel::{self, Receiver, Sender};
use desim::SimTime;
use hc3i_core::{AppPayload, CheckpointCodec, NodeEngine, ProtocolConfig, XportConfig};
use netsim::NodeId;
use simdriver::RunReport;
use std::cell::RefCell;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use storage::{DurableOptions, DurableStore};

/// The shared on-disk segment log of a durable federation: one
/// [`DurableStore`] guarded by a mutex, appended to by every shard worker.
/// Per-node frame order is preserved without any cross-shard coordination
/// beyond the lock — a node lives on exactly one shard, so its commits,
/// truncations and prunes are appended in the order its engine emitted
/// them.
pub(crate) type SharedDurable = Arc<Mutex<DurableStore<CheckpointCodec>>>;

/// Factory producing one application instance per node.
pub type AppFactory = Arc<dyn Fn(NodeId) -> Box<dyn Application> + Send + Sync>;

/// Configuration of a sharded federation.
#[derive(Clone)]
pub struct RuntimeConfig {
    /// Protocol parameters (shared with the simulator).
    pub protocol: ProtocolConfig,
    /// Wall-clock delay between unforced CLCs per cluster (`None` = only
    /// explicit [`Federation::checkpoint_now`] calls).
    pub clc_delays: Vec<Option<Duration>>,
    /// Optional per-node application (checkpointed state).
    pub app_factory: Option<AppFactory>,
    /// Optional heartbeat failure detection (one probe per cluster, run by
    /// the shard homing the cluster's rank 0).
    pub heartbeat: Option<HeartbeatConfig>,
    /// Worker-pool size (`None` = `available_parallelism`, clamped to the
    /// node count).
    pub shards: Option<usize>,
    /// Host-level reliable transport for inter-cluster traffic
    /// (retransmission + dedup; see `hc3i_core::xport`). The crossbeam
    /// channels are already reliable, so this is off by default — enable
    /// it to mirror a deployment whose WAN can drop packets, or to keep a
    /// scenario config identical to a lossy simulator run.
    pub xport: Option<XportConfig>,
    /// Mirror every node's CLC store to an on-disk segment log under this
    /// directory (`storage::DurableStore`): commits, rollback truncations
    /// and GC prunes are appended as checksummed frames, fsync-ed per
    /// commit, so a hard-killed federation recovers to its last durable
    /// CLC. The directory must not already hold a segment log. `None`
    /// (the default) keeps everything in memory; protocol behaviour is
    /// identical either way.
    pub durable_dir: Option<PathBuf>,
}

impl RuntimeConfig {
    /// Manual-checkpoint config over the given cluster sizes.
    pub fn manual(cluster_sizes: Vec<u32>) -> Self {
        let n = cluster_sizes.len();
        RuntimeConfig {
            protocol: ProtocolConfig::new(cluster_sizes),
            clc_delays: vec![None; n],
            app_factory: None,
            heartbeat: None,
            shards: None,
            xport: None,
            durable_dir: None,
        }
    }

    /// Arm one cluster's periodic CLC timer.
    pub fn with_clc_delay(mut self, cluster: usize, delay: Duration) -> Self {
        self.clc_delays[cluster] = Some(delay);
        self
    }

    /// Replace the protocol config.
    pub fn with_protocol(mut self, protocol: ProtocolConfig) -> Self {
        self.protocol = protocol;
        self
    }

    /// Install a per-node application.
    pub fn with_app(
        mut self,
        factory: impl Fn(NodeId) -> Box<dyn Application> + Send + Sync + 'static,
    ) -> Self {
        self.app_factory = Some(Arc::new(factory));
        self
    }

    /// Enable autonomous heartbeat failure detection.
    pub fn with_heartbeat(mut self, cfg: HeartbeatConfig) -> Self {
        self.heartbeat = Some(cfg);
        self
    }

    /// Fix the worker-pool size (default: `available_parallelism`).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Enable the host-level reliable transport (default tuning) on every
    /// inter-cluster link.
    pub fn with_reliable_transport(mut self) -> Self {
        self.xport = Some(XportConfig::default());
        self
    }

    /// Enable the host-level reliable transport with explicit tuning.
    pub fn with_transport(mut self, xport: XportConfig) -> Self {
        self.xport = Some(xport);
        self
    }

    /// Mirror every node's CLC store to an on-disk segment log under
    /// `dir` (must not already hold one).
    pub fn with_durable_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durable_dir = Some(dir.into());
        self
    }
}

/// Shared fail-stop health table: one *failure generation* counter per
/// node in cluster-major global order — even means alive, odd means
/// fail-stopped. The shard owning a node bumps the counter whenever its
/// engine's fail-stopped bit actually transitions (not per input, so the
/// hot path writes nothing in steady state); heartbeat probes read the
/// counters instead of timing pong round-trips, so detection never
/// false-positives under load. The generation — not just the parity —
/// is what probes record per report: a node that is revived by a rollback
/// and fails again between two probe rounds carries a *new* odd
/// generation and is re-reported, even though the probe never observed
/// the alive window (the simulator's `reported` bookkeeping clears on
/// re-fail the same way).
pub(crate) struct Health(Vec<AtomicU64>);

impl Health {
    fn new(total: usize) -> Self {
        Health((0..total).map(|_| AtomicU64::new(0)).collect())
    }

    /// Record one alive↔failed transition.
    pub(crate) fn bump(&self, gidx: usize) {
        self.0[gidx].fetch_add(1, Ordering::AcqRel);
    }

    /// Current failure generation (odd = fail-stopped right now).
    pub(crate) fn generation(&self, gidx: usize) -> u64 {
        self.0[gidx].load(Ordering::Acquire)
    }

    /// Is the generation a fail-stopped one?
    pub(crate) fn is_failed_generation(generation: u64) -> bool {
        generation & 1 == 1
    }
}

/// The routing table: maps a [`NodeId`] to its shard channel and slot.
/// Shared (via `Arc`) by the controller and every shard worker.
pub(crate) struct Routes {
    /// `offsets[c]` = global index of cluster `c`'s rank 0; `offsets[n]` =
    /// total node count.
    offsets: Vec<usize>,
    /// Every node, global (cluster-major) order.
    ids: Vec<NodeId>,
    /// Global index → `(shard, slot)`.
    addr: Vec<(u32, u32)>,
    shard_txs: Vec<Sender<(u32, Envelope)>>,
}

impl Routes {
    pub(crate) fn global_index(&self, id: NodeId) -> usize {
        self.offsets[id.cluster.index()] + id.rank as usize
    }

    /// Every node of the federation, cluster-major order.
    pub(crate) fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Route an envelope to `to`'s shard. Fails only once the shard worker
    /// has exited (shutdown).
    pub(crate) fn send(&self, to: NodeId, env: Envelope) -> Result<(), ()> {
        let (shard, slot) = self.addr[self.global_index(to)];
        self.shard_txs[shard as usize]
            .send((slot, env))
            .map_err(|_| ())
    }
}

/// Final per-node state returned by [`Federation::shutdown_with_apps`].
pub type NodeFinalState = (NodeEngine, Option<Box<dyn Application>>);

/// A running sharded federation.
pub struct Federation {
    routes: Arc<Routes>,
    handles: Vec<JoinHandle<Vec<(NodeId, NodeFinalState)>>>,
    events_rx: Receiver<RtEvent>,
    cfg: RuntimeConfig,
    num_shards: usize,
    /// Spawn instant: the zero point of the run's wall-clock timeline.
    epoch: Instant,
    /// Folds every event the controller observes into the run report
    /// ([`Federation::report`]). A `RefCell`, not a mutex: the event
    /// receiver is single-consumer (`!Sync`), so the `Federation` is
    /// already confined to one observing thread and the per-event fold
    /// must not pay an atomic lock on the hot drain path.
    collector: RefCell<ReportCollector>,
}

impl Federation {
    /// Spawn the worker pool and connect all shard channels.
    pub fn spawn(cfg: RuntimeConfig) -> Self {
        let epoch = Instant::now();
        let n_clusters = cfg.protocol.num_clusters();
        let mut offsets = Vec::with_capacity(n_clusters + 1);
        let mut ids = Vec::new();
        let mut total = 0usize;
        for c in 0..n_clusters {
            offsets.push(total);
            let nodes = cfg.protocol.nodes_in(c);
            for r in 0..nodes {
                ids.push(NodeId::new(c as u16, r));
            }
            total += nodes as usize;
        }
        offsets.push(total);

        let num_shards = cfg
            .shards
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .clamp(1, total.max(1));

        let mut shard_txs = Vec::with_capacity(num_shards);
        let mut shard_rxs = Vec::with_capacity(num_shards);
        for _ in 0..num_shards {
            let (tx, rx) = channel::unbounded();
            shard_txs.push(tx);
            shard_rxs.push(rx);
        }

        // Deterministic assignment: global index `g` lives on shard
        // `g % num_shards` at slot `g / num_shards`.
        let health = Arc::new(Health::new(total));
        let mut addr = Vec::with_capacity(total);
        let mut cells: Vec<Vec<NodeCell>> = (0..num_shards).map(|_| Vec::new()).collect();
        let proto = Arc::new(cfg.protocol.clone());
        for (g, &id) in ids.iter().enumerate() {
            let shard = g % num_shards;
            addr.push((shard as u32, cells[shard].len() as u32));
            let delay = cfg.clc_delays[id.cluster.index()];
            cells[shard].push(NodeCell {
                id,
                gidx: g,
                engine: NodeEngine::new(proto.clone(), id),
                app: cfg.app_factory.as_ref().map(|f| f(id)),
                clc_delay: delay,
                clc_deadline: delay.map(|d| Instant::now() + d),
                published_failed: false,
                stopped: false,
            });
        }
        // Open the durable segment log (if configured) and seed it with
        // every node's genesis CLC — the initial checkpoint is committed
        // inside `NodeEngine::new`, so it never flows through the
        // `StoreCommitted` hook.
        let durable: Option<SharedDurable> = cfg.durable_dir.as_ref().map(|dir| {
            let mut log = DurableStore::open(dir, CheckpointCodec, DurableOptions::default())
                .unwrap_or_else(|e| panic!("open durable store at {}: {e}", dir.display()));
            assert!(
                log.is_fresh(),
                "durable dir {} already holds a segment log; recover it or use a fresh directory",
                dir.display()
            );
            for (g, &(shard, slot)) in addr.iter().enumerate() {
                log.snapshot_node(
                    g as u64,
                    cells[shard as usize][slot as usize].engine.store(),
                )
                .expect("seed durable genesis");
            }
            log.sync().expect("sync durable genesis");
            Arc::new(Mutex::new(log))
        });

        let routes = Arc::new(Routes {
            offsets: offsets.clone(),
            ids,
            addr,
            shard_txs,
        });

        // Each cluster's probe is homed on the shard owning its rank 0.
        let mut probes: Vec<Vec<ClusterProbe>> = (0..num_shards).map(|_| Vec::new()).collect();
        if let Some(hb) = cfg.heartbeat {
            for (c, &base) in offsets.iter().take(n_clusters).enumerate() {
                probes[base % num_shards].push(ClusterProbe::new(
                    c as u16,
                    (0..cfg.protocol.nodes_in(c)).collect(),
                    base,
                    hb,
                    Instant::now(),
                ));
            }
        }

        let (events_tx, events_rx) = channel::unbounded();
        let handles = shard_rxs
            .into_iter()
            .zip(cells)
            .zip(probes)
            .enumerate()
            .map(|(s, ((rx, nodes), shard_probes))| {
                let worker = ShardWorker::new(
                    nodes,
                    rx,
                    routes.clone(),
                    health.clone(),
                    events_tx.clone(),
                    epoch,
                    shard_probes,
                )
                .with_xport(cfg.xport)
                .with_durable(durable.clone());
                std::thread::Builder::new()
                    .name(format!("hc3i-shard-{s}"))
                    .spawn(move || worker.run())
                    .expect("spawn shard worker")
            })
            .collect();

        Federation {
            routes,
            handles,
            events_rx,
            collector: RefCell::new(ReportCollector::new(n_clusters)),
            cfg,
            num_shards,
            epoch,
        }
    }

    /// Fold one observed event into the report collector.
    fn record(&self, ev: &RtEvent) {
        self.collector.borrow_mut().observe(ev, self.epoch);
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// The worker-pool size actually in use.
    pub fn shards(&self) -> usize {
        self.num_shards
    }

    fn route(&self, to: NodeId, env: Envelope) {
        self.routes.send(to, env).expect("shard worker alive");
    }

    /// Application send.
    pub fn send_app(&self, from: NodeId, to: NodeId, payload: AppPayload) {
        self.collector.borrow_mut().note_send();
        self.route(from, Envelope::AppSend { to, payload });
    }

    /// Take an unforced CLC in `cluster` now.
    pub fn checkpoint_now(&self, cluster: usize) {
        self.route(NodeId::new(cluster as u16, 0), Envelope::ClcNow);
    }

    /// Run a garbage collection now.
    pub fn gc_now(&self) {
        self.route(NodeId::new(0, 0), Envelope::GcNow);
    }

    /// Fail-stop a node.
    pub fn fail(&self, node: NodeId) {
        self.route(node, Envelope::Fail);
    }

    /// Deliver a failure-detector report to `detector`.
    pub fn detect(&self, detector: NodeId, failed_rank: u32) {
        self.route(detector, Envelope::Detect { failed_rank });
    }

    /// Next event, waiting up to `timeout`.
    pub fn next_event(&self, timeout: Duration) -> Option<RtEvent> {
        let ev = self.events_rx.recv_timeout(timeout).ok()?;
        self.record(&ev);
        Some(ev)
    }

    /// Wait until `pred` matches an event, collecting everything seen.
    /// Returns all events observed (the matching one last), or `None` on
    /// timeout.
    ///
    /// Drains in batches: after each blocking receive, every event already
    /// queued is consumed without re-blocking, so a controller chasing a
    /// busy federation parks (and is unparked by producers — a futex
    /// syscall each) once per *burst* instead of once per event.
    pub fn wait_for(
        &self,
        timeout: Duration,
        mut pred: impl FnMut(&RtEvent) -> bool,
    ) -> Option<Vec<RtEvent>> {
        let deadline = Instant::now() + timeout;
        let mut seen = Vec::new();
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            match self.events_rx.recv_timeout(remaining) {
                Ok(ev) => {
                    self.record(&ev);
                    let hit = pred(&ev);
                    seen.push(ev);
                    if hit {
                        return Some(seen);
                    }
                    // Batch-drain whatever arrived in the meantime.
                    for ev in self.events_rx.try_iter() {
                        self.record(&ev);
                        let hit = pred(&ev);
                        seen.push(ev);
                        if hit {
                            return Some(seen);
                        }
                    }
                }
                Err(_) => return None,
            }
        }
    }

    /// Drain any already-available events without blocking.
    pub fn drain_events(&self) -> Vec<RtEvent> {
        let events: Vec<RtEvent> = self.events_rx.try_iter().collect();
        for ev in &events {
            self.record(ev);
        }
        events
    }

    /// Flush in-flight traffic with a ping barrier.
    ///
    /// Shard channels are FIFO, so one round of pings guarantees every
    /// node has processed everything that was routed to it before the
    /// round started; `rounds` consecutive barriers therefore flush
    /// protocol chains up to `rounds` hops deep (send → deliver → ack is
    /// 2 hops; an alert cascade with log replay is ~4). Call this before
    /// [`Federation::shutdown`] when final engine states must reflect all
    /// consequences of previously injected inputs — otherwise a message
    /// still in flight races the `Shutdown` envelope.
    ///
    /// Returns the number of nodes that answered the final round
    /// (fail-stopped nodes stay silent, so a fully healthy federation
    /// answers with its total node count).
    pub fn quiesce(&self, rounds: usize, timeout: Duration) -> usize {
        let mut answered = 0;
        for _ in 0..rounds.max(1) {
            let (reply_tx, reply_rx) = channel::unbounded();
            let mut sent = 0usize;
            for &id in self.routes.ids() {
                if self
                    .routes
                    .send(
                        id,
                        Envelope::Ping {
                            seq: 0,
                            reply: reply_tx.clone(),
                        },
                    )
                    .is_ok()
                {
                    sent += 1;
                }
            }
            drop(reply_tx);
            let deadline = Instant::now() + timeout;
            answered = 0;
            while answered < sent {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                match reply_rx.recv_timeout(remaining) {
                    Ok(_) => answered += 1,
                    Err(_) => break,
                }
            }
        }
        answered
    }

    /// Stop the federation and produce the run's [`RunReport`] — the same
    /// shape the discrete-event simulator emits, so controllers (the CLI's
    /// `--runtime` mode, the equivalence tests) can print or fingerprint
    /// live-substrate runs with the simulator's output format.
    ///
    /// Folds every event observed through [`Federation::next_event`] /
    /// [`Federation::wait_for`] / [`Federation::drain_events`], drains
    /// whatever is still queued (including events produced while the pool
    /// shuts down), and finalizes storage/log occupancy from the joined
    /// engines. Call [`Federation::quiesce`] first when in-flight protocol
    /// chains must settle into the report.
    ///
    /// See [`crate::report`] for which fields are live-substrate faithful
    /// and which (wire-byte counters, work-lost durations) stay zero.
    pub fn report(mut self) -> RunReport {
        for ev in self.events_rx.try_iter() {
            self.collector.borrow_mut().observe(&ev, self.epoch);
        }
        let engines: HashMap<NodeId, NodeEngine> = self
            .stop_and_join()
            .into_iter()
            .map(|(id, (engine, _))| (id, engine))
            .collect();
        // Workers have exited: the senders are gone, so this drain is
        // complete, not racy.
        let remaining: Vec<RtEvent> = self.events_rx.try_iter().collect();
        let ended_at = SimTime(self.epoch.elapsed().as_nanos() as u64);
        let mut collector = self.collector.borrow_mut();
        for ev in &remaining {
            collector.observe(ev, self.epoch);
        }
        let cluster_sizes: Vec<u32> = (0..self.cfg.protocol.num_clusters())
            .map(|c| self.cfg.protocol.nodes_in(c))
            .collect();
        let collector = std::mem::replace(&mut *collector, ReportCollector::new(0));
        collector.finalize(&engines, &cluster_sizes, ended_at)
    }

    /// Stop every node and return the final engines, keyed by node.
    pub fn shutdown(self) -> HashMap<NodeId, NodeEngine> {
        self.shutdown_with_apps()
            .into_iter()
            .map(|(id, (engine, _))| (id, engine))
            .collect()
    }

    /// Stop every node and return engines plus application instances.
    pub fn shutdown_with_apps(mut self) -> HashMap<NodeId, NodeFinalState> {
        self.stop_and_join()
    }

    /// The one stop-the-pool path: request shutdown, join every worker,
    /// collect the final node states. Shared by [`Federation::shutdown`],
    /// [`Federation::shutdown_with_apps`] and [`Federation::report`], so
    /// a change to how the pool winds down cannot miss one of them.
    fn stop_and_join(&mut self) -> HashMap<NodeId, NodeFinalState> {
        self.request_shutdown();
        std::mem::take(&mut self.handles)
            .into_iter()
            .flat_map(|h| h.join().expect("shard worker panicked"))
            .collect()
    }

    /// The one shutdown protocol: ask every node to stop (idempotent —
    /// stopped nodes drop the envelope, exited shards fail the send).
    fn request_shutdown(&self) {
        for &id in self.routes.ids() {
            let _ = self.routes.send(id, Envelope::Shutdown);
        }
    }
}

impl Drop for Federation {
    /// Dropping without an explicit shutdown still stops the pool: shard
    /// workers hold the routing table (and thus each other's channels)
    /// alive, so they only exit on `Shutdown` envelopes. Unlike
    /// [`Federation::shutdown_with_apps`], a worker panic is swallowed
    /// here — drop glue must not double-panic.
    fn drop(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        self.request_shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
