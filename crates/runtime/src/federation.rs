//! The threaded message-passing federation.
//!
//! One OS thread per node; mailboxes are unbounded crossbeam channels (the
//! "hand-rolled messaging layer": reliable, per-sender-FIFO — the same
//! properties the paper assumes of its network). Each thread drives the
//! *identical* [`NodeEngine`] state machine the discrete-event simulator
//! uses; only the transport differs. The controller injects application
//! sends, checkpoints, faults and GC, and observes a stream of
//! [`RtEvent`]s.

use crate::app::Application;
use crate::detector::{spawn_cluster_detector, ClusterDetector, HeartbeatConfig};
use crate::envelope::{Envelope, RtEvent};
use std::sync::atomic::{AtomicBool, Ordering};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use desim::SimTime;
use hc3i_core::{AppPayload, Input, NodeEngine, Output, OutputBuf, ProtocolConfig};
use netsim::NodeId;
use std::collections::{HashMap, VecDeque};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Factory producing one application instance per node.
pub type AppFactory = Arc<dyn Fn(NodeId) -> Box<dyn Application> + Send + Sync>;

/// Configuration of a threaded federation.
#[derive(Clone)]
pub struct RuntimeConfig {
    /// Protocol parameters (shared with the simulator).
    pub protocol: ProtocolConfig,
    /// Wall-clock delay between unforced CLCs per cluster (`None` = only
    /// explicit [`Federation::checkpoint_now`] calls).
    pub clc_delays: Vec<Option<Duration>>,
    /// Optional per-node application (checkpointed state).
    pub app_factory: Option<AppFactory>,
    /// Optional heartbeat failure detection (one detector per cluster).
    pub heartbeat: Option<HeartbeatConfig>,
}

impl RuntimeConfig {
    /// Manual-checkpoint config over the given cluster sizes.
    pub fn manual(cluster_sizes: Vec<u32>) -> Self {
        let n = cluster_sizes.len();
        RuntimeConfig {
            protocol: ProtocolConfig::new(cluster_sizes),
            clc_delays: vec![None; n],
            app_factory: None,
            heartbeat: None,
        }
    }

    /// Arm one cluster's periodic CLC timer.
    pub fn with_clc_delay(mut self, cluster: usize, delay: Duration) -> Self {
        self.clc_delays[cluster] = Some(delay);
        self
    }

    /// Replace the protocol config.
    pub fn with_protocol(mut self, protocol: ProtocolConfig) -> Self {
        self.protocol = protocol;
        self
    }

    /// Install a per-node application.
    pub fn with_app(
        mut self,
        factory: impl Fn(NodeId) -> Box<dyn Application> + Send + Sync + 'static,
    ) -> Self {
        self.app_factory = Some(Arc::new(factory));
        self
    }

    /// Enable autonomous heartbeat failure detection.
    pub fn with_heartbeat(mut self, cfg: HeartbeatConfig) -> Self {
        self.heartbeat = Some(cfg);
        self
    }
}

struct NodeThread {
    id: NodeId,
    engine: NodeEngine,
    rx: Receiver<Envelope>,
    routes: HashMap<NodeId, Sender<Envelope>>,
    events: Sender<RtEvent>,
    epoch: Instant,
    clc_delay: Option<Duration>,
    clc_deadline: Option<Instant>,
    app: Option<Box<dyn Application>>,
    /// Reusable sink the engine emits into (same API the simulator
    /// drives, so both substrates run byte-identical engine code with no
    /// per-input allocation).
    buf: OutputBuf,
    /// Reusable dispatch queue: outputs under processing, including
    /// follow-ups emitted by `AppStateUpdate` re-entries.
    work: VecDeque<Output>,
}

impl NodeThread {
    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_nanos() as u64)
    }

    fn run(mut self) -> NodeFinalState {
        loop {
            let env = match self.clc_deadline {
                Some(deadline) => {
                    let timeout = deadline.saturating_duration_since(Instant::now());
                    match self.rx.recv_timeout(timeout) {
                        Ok(env) => env,
                        Err(RecvTimeoutError::Timeout) => {
                            self.clc_deadline = None;
                            let now = self.now();
                            self.engine.handle(now, Input::ClcTimer, &mut self.buf);
                            self.dispatch();
                            // If no commit re-armed it (e.g. we are not the
                            // coordinator), re-arm manually.
                            if self.clc_deadline.is_none() {
                                if let Some(d) = self.clc_delay {
                                    self.clc_deadline = Some(Instant::now() + d);
                                }
                            }
                            continue;
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                None => match self.rx.recv() {
                    Ok(env) => env,
                    Err(_) => break,
                },
            };
            let input = match env {
                Envelope::Net { from, msg } => Input::Receive { from, msg },
                Envelope::AppSend { to, payload } => Input::AppSend { to, payload },
                Envelope::ClcNow => Input::ClcTimer,
                Envelope::GcNow => Input::GcTimer,
                Envelope::Fail => Input::Fail,
                Envelope::Detect { failed_rank } => Input::DetectFault { failed_rank },
                Envelope::DetectMulti { failed_ranks } => Input::DetectFaults { failed_ranks },
                Envelope::Ping { seq, reply } => {
                    // Liveness is a node-thread property: a fail-stopped
                    // engine stays silent, everyone else answers.
                    if !self.engine.is_failed() {
                        let _ = reply.send((self.id.rank, seq));
                    }
                    continue;
                }
                Envelope::Shutdown => break,
            };
            let now = self.now();
            self.engine.handle(now, input, &mut self.buf);
            self.dispatch();
        }
        (self.engine, self.app)
    }

    /// Perform everything the engine just emitted into `self.buf`. The
    /// buffer and the work queue are reused across inputs.
    fn dispatch(&mut self) {
        debug_assert!(self.work.is_empty());
        self.work.extend(self.buf.drain());
        while let Some(out) = self.work.pop_front() {
            match out {
                Output::Send { to, msg } => {
                    // A vanished route only happens at shutdown; drop then.
                    if let Some(tx) = self.routes.get(&to) {
                        let _ = tx.send(Envelope::Net { from: self.id, msg });
                    }
                }
                Output::DeliverApp { from, payload } => {
                    if let Some(app) = self.app.as_mut() {
                        app.on_deliver(from, payload);
                        let snap = app.snapshot();
                        let now = SimTime(self.epoch.elapsed().as_nanos() as u64);
                        self.engine
                            .handle(now, Input::AppStateUpdate { state: snap }, &mut self.buf);
                        self.work.extend(self.buf.drain());
                    }
                    let _ = self.events.send(RtEvent::Delivered {
                        to: self.id,
                        from,
                        payload,
                    });
                }
                Output::Committed { sn, forced } => {
                    let _ = self.events.send(RtEvent::Committed {
                        cluster: self.id.cluster.index(),
                        sn,
                        forced,
                    });
                }
                Output::ResetClcTimer => {
                    if let Some(d) = self.clc_delay {
                        self.clc_deadline = Some(Instant::now() + d);
                    }
                }
                Output::RolledBack { restore_sn, .. } => {
                    let _ = self.events.send(RtEvent::RolledBack {
                        node: self.id,
                        restore_sn,
                    });
                }
                Output::GcReport { before, after } => {
                    let _ = self.events.send(RtEvent::GcReport {
                        cluster: self.id.cluster.index(),
                        before,
                        after,
                    });
                }
                Output::Unrecoverable { failed_rank } => {
                    let _ = self.events.send(RtEvent::Unrecoverable {
                        cluster: self.id.cluster.index(),
                        rank: failed_rank,
                    });
                }
                Output::LateCrossing { .. } => {
                    let _ = self.events.send(RtEvent::LateCrossing { node: self.id });
                }
                Output::RestoreApp { state } => {
                    if let Some(app) = self.app.as_mut() {
                        app.restore(state.as_deref());
                    }
                }
            }
        }
    }
}

/// Final per-node state returned by [`Federation::shutdown_with_apps`].
pub type NodeFinalState = (NodeEngine, Option<Box<dyn Application>>);

/// A running threaded federation.
pub struct Federation {
    routes: HashMap<NodeId, Sender<Envelope>>,
    handles: Vec<(NodeId, JoinHandle<NodeFinalState>)>,
    events_rx: Receiver<RtEvent>,
    cfg: RuntimeConfig,
    detector_stop: Arc<AtomicBool>,
    detectors: Vec<ClusterDetector>,
}

impl Federation {
    /// Spawn one thread per node and connect all mailboxes.
    pub fn spawn(cfg: RuntimeConfig) -> Self {
        let epoch = Instant::now();
        let (events_tx, events_rx) = channel::unbounded();
        let mut routes = HashMap::new();
        let mut mailboxes = Vec::new();
        for c in 0..cfg.protocol.num_clusters() {
            for r in 0..cfg.protocol.nodes_in(c) {
                let id = NodeId::new(c as u16, r);
                let (tx, rx) = channel::unbounded();
                routes.insert(id, tx);
                mailboxes.push((id, rx));
            }
        }
        let mut handles = Vec::new();
        for (id, rx) in mailboxes {
            let node = NodeThread {
                id,
                engine: NodeEngine::new(cfg.protocol.clone(), id),
                rx,
                routes: routes.clone(),
                events: events_tx.clone(),
                epoch,
                clc_delay: cfg.clc_delays[id.cluster.index()],
                clc_deadline: cfg.clc_delays[id.cluster.index()]
                    .map(|d| Instant::now() + d),
                app: cfg.app_factory.as_ref().map(|f| f(id)),
                buf: OutputBuf::new(),
                work: VecDeque::new(),
            };
            let handle = std::thread::Builder::new()
                .name(format!("hc3i-{id}"))
                .spawn(move || node.run())
                .expect("spawn node thread");
            handles.push((id, handle));
        }
        let detector_stop = Arc::new(AtomicBool::new(false));
        let mut detectors = Vec::new();
        if let Some(hb) = cfg.heartbeat {
            for c in 0..cfg.protocol.num_clusters() {
                let ranks: Vec<u32> = (0..cfg.protocol.nodes_in(c)).collect();
                detectors.push(spawn_cluster_detector(
                    c as u16,
                    ranks,
                    routes.clone(),
                    hb,
                    detector_stop.clone(),
                ));
            }
        }
        Federation {
            routes,
            handles,
            events_rx,
            cfg,
            detector_stop,
            detectors,
        }
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    fn route(&self, to: NodeId, env: Envelope) {
        self.routes
            .get(&to)
            .expect("unknown node")
            .send(env)
            .expect("node thread alive");
    }

    /// Application send.
    pub fn send_app(&self, from: NodeId, to: NodeId, payload: AppPayload) {
        self.route(from, Envelope::AppSend { to, payload });
    }

    /// Take an unforced CLC in `cluster` now.
    pub fn checkpoint_now(&self, cluster: usize) {
        self.route(NodeId::new(cluster as u16, 0), Envelope::ClcNow);
    }

    /// Run a garbage collection now.
    pub fn gc_now(&self) {
        self.route(NodeId::new(0, 0), Envelope::GcNow);
    }

    /// Fail-stop a node.
    pub fn fail(&self, node: NodeId) {
        self.route(node, Envelope::Fail);
    }

    /// Deliver a failure-detector report to `detector`.
    pub fn detect(&self, detector: NodeId, failed_rank: u32) {
        self.route(detector, Envelope::Detect { failed_rank });
    }

    /// Next event, waiting up to `timeout`.
    pub fn next_event(&self, timeout: Duration) -> Option<RtEvent> {
        self.events_rx.recv_timeout(timeout).ok()
    }

    /// Wait until `pred` matches an event, collecting everything seen.
    /// Returns all events observed (the matching one last), or `None` on
    /// timeout.
    pub fn wait_for(
        &self,
        timeout: Duration,
        mut pred: impl FnMut(&RtEvent) -> bool,
    ) -> Option<Vec<RtEvent>> {
        let deadline = Instant::now() + timeout;
        let mut seen = Vec::new();
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            match self.events_rx.recv_timeout(remaining) {
                Ok(ev) => {
                    let hit = pred(&ev);
                    seen.push(ev);
                    if hit {
                        return Some(seen);
                    }
                }
                Err(_) => return None,
            }
        }
    }

    /// Drain any already-available events without blocking.
    pub fn drain_events(&self) -> Vec<RtEvent> {
        self.events_rx.try_iter().collect()
    }

    /// Flush in-flight traffic with a ping barrier.
    ///
    /// Mailboxes are per-sender FIFO, so one round of pings guarantees
    /// every node has processed everything that was in its mailbox before
    /// the round started; `rounds` consecutive barriers therefore flush
    /// protocol chains up to `rounds` hops deep (send → deliver → ack is
    /// 2 hops; an alert cascade with log replay is ~4). Call this before
    /// [`Federation::shutdown`] when final engine states must reflect all
    /// consequences of previously injected inputs — otherwise a message
    /// still in flight races the `Shutdown` envelope.
    ///
    /// Returns the number of nodes that answered the final round
    /// (fail-stopped nodes stay silent, so a fully healthy federation
    /// answers with its total node count).
    pub fn quiesce(&self, rounds: usize, timeout: Duration) -> usize {
        let mut answered = 0;
        for _ in 0..rounds.max(1) {
            let (reply_tx, reply_rx) = channel::unbounded();
            let mut sent = 0usize;
            for tx in self.routes.values() {
                if tx
                    .send(Envelope::Ping {
                        seq: 0,
                        reply: reply_tx.clone(),
                    })
                    .is_ok()
                {
                    sent += 1;
                }
            }
            drop(reply_tx);
            let deadline = Instant::now() + timeout;
            answered = 0;
            while answered < sent {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                match reply_rx.recv_timeout(remaining) {
                    Ok(_) => answered += 1,
                    Err(_) => break,
                }
            }
        }
        answered
    }

    /// Stop every node and return the final engines, keyed by node.
    pub fn shutdown(self) -> HashMap<NodeId, NodeEngine> {
        self.shutdown_with_apps()
            .into_iter()
            .map(|(id, (engine, _))| (id, engine))
            .collect()
    }

    /// Stop every node and return engines plus application instances.
    pub fn shutdown_with_apps(self) -> HashMap<NodeId, NodeFinalState> {
        self.detector_stop.store(true, Ordering::Relaxed);
        for tx in self.routes.values() {
            let _ = tx.send(Envelope::Shutdown);
        }
        drop(self.routes);
        for d in self.detectors {
            let _ = d.handle.join();
        }
        self.handles
            .into_iter()
            .map(|(id, h)| (id, h.join().expect("node thread panicked")))
            .collect()
    }
}
