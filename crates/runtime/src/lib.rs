//! # runtime — sharded multiplexed message-passing substrate
//!
//! There is no mature MPI binding in the Rust ecosystem, so this crate
//! provides the messaging layer a real deployment of the protocol needs: a
//! fixed pool of shard worker threads (default `available_parallelism`)
//! multiplexing every node's mailbox over unbounded crossbeam channels
//! (reliable, FIFO per sender — the paper's network assumptions),
//! wall-clock CLC timers and heartbeat failure detection folded into shard
//! ticks, and controller-driven fault injection. Earlier revisions spawned
//! one OS thread per node, which capped the live substrate at a few
//! hundred nodes; the sharded executor runs thousands of nodes on a
//! fixed-size pool (a 2048-node federation completes on a single worker).
//!
//! It drives the *same* [`hc3i_core::NodeEngine`] the discrete-event
//! simulator uses — through the same reusable `OutputBuf` sink API — so
//! the protocol logic validated by simulation is exercised unchanged,
//! allocation-free, on a real concurrent transport.
//!
//! **Determinism contract:** shard assignment is cluster-major global
//! index modulo the pool size, and protocol state is independent of the
//! pool size — the `engines_agree` and `runtime_equivalence` tests pin
//! that quiesced scenarios reach identical engine states at 1, 2 and 8
//! shards and match the simulator. [`Federation::quiesce`] provides the
//! ping barrier for tests that must observe fully settled engine states.

#![warn(missing_docs)]

pub mod app;
pub mod detector;
pub mod envelope;
pub mod federation;
pub mod report;
mod shard;

pub use app::{Application, CounterApp};
pub use detector::HeartbeatConfig;
pub use envelope::{Envelope, RtEvent};
pub use federation::{AppFactory, Federation, RuntimeConfig};
pub use simdriver::RunReport;
