//! # runtime — hand-rolled threaded message-passing substrate
//!
//! There is no mature MPI binding in the Rust ecosystem, so this crate
//! provides the messaging layer a real deployment of the protocol needs:
//! one OS thread per node, unbounded crossbeam-channel mailboxes (reliable,
//! FIFO per sender — the paper's network assumptions), wall-clock CLC
//! timers, and controller-driven fault injection. It drives the *same*
//! [`hc3i_core::NodeEngine`] the discrete-event simulator uses — through
//! the same reusable `OutputBuf` sink API — so the protocol logic
//! validated by simulation is exercised unchanged, allocation-free, on a
//! real concurrent transport. [`Federation::quiesce`] provides a ping
//! barrier for tests that must observe fully settled engine states.

#![warn(missing_docs)]

pub mod app;
pub mod detector;
pub mod envelope;
pub mod federation;

pub use app::{Application, CounterApp};
pub use detector::HeartbeatConfig;
pub use envelope::{Envelope, RtEvent};
pub use federation::{AppFactory, Federation, RuntimeConfig};
