//! # runtime — hand-rolled threaded message-passing substrate
//!
//! There is no mature MPI binding in the Rust ecosystem, so this crate
//! provides the messaging layer a real deployment of the protocol needs:
//! one OS thread per node, unbounded crossbeam-channel mailboxes (reliable,
//! FIFO per sender — the paper's network assumptions), wall-clock CLC
//! timers, and controller-driven fault injection. It drives the *same*
//! [`hc3i_core::NodeEngine`] the discrete-event simulator uses, so the
//! protocol logic validated by simulation is exercised unchanged on a real
//! concurrent transport.

#![warn(missing_docs)]

pub mod app;
pub mod detector;
pub mod envelope;
pub mod federation;

pub use app::{Application, CounterApp};
pub use detector::HeartbeatConfig;
pub use envelope::{Envelope, RtEvent};
pub use federation::{AppFactory, Federation, RuntimeConfig};
