//! Heartbeat failure detection, folded into shard ticks.
//!
//! The paper scopes the failure detector out ("the description of the
//! failure detector is out of the scope of this paper"); a runnable
//! messaging layer still needs one. Earlier revisions ran one detector
//! *thread* per cluster that pinged every node each period — workable at
//! hundreds of nodes, but the ping round-trips became timing-sensitive the
//! moment thousands of mailboxes multiplexed onto a fixed worker pool: a
//! busy shard could delay pong processing past the round timeout and a
//! perfectly healthy node would be reported dead.
//!
//! The sharded executor therefore folds detection into the shard tick. The
//! worker that owns a node publishes every alive↔failed transition of its
//! engine as a *failure generation* counter in a shared `Health` table
//! (even = alive, odd = fail-stopped), and each cluster has one probe
//! (`ClusterProbe`) — owned by the shard that hosts the cluster's rank 0 —
//! that scans those counters once per [`HeartbeatConfig::period`] and
//! reports newly failed ranks to the lowest-ranked live node as a single
//! `DetectMulti` envelope (the engine's multi-failure
//! `Input::DetectFaults` path). Reports are keyed by generation, so a node
//! revived by a rollback becomes reportable again even if it fails anew
//! before the probe ever observes the alive window. Detection latency is
//! bounded by one period plus shard scheduling, and false positives are
//! impossible: the counter parity is the fail-stop ground truth, not a
//! missed-pong heuristic.

use crate::envelope::Envelope;
use crate::federation::{Health, Routes};
use netsim::NodeId;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Heartbeat parameters.
#[derive(Debug, Clone, Copy)]
pub struct HeartbeatConfig {
    /// Time between detection rounds.
    pub period: Duration,
    /// Legacy pong-collection window of the threaded detector. The sharded
    /// executor reads authoritative health bits instead of collecting
    /// pongs, so this no longer gates detection; it is retained so
    /// existing configurations keep compiling unchanged.
    pub timeout: Duration,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            period: Duration::from_millis(50),
            timeout: Duration::from_millis(25),
        }
    }
}

/// Per-cluster failure-detection state machine, ticked by the shard that
/// owns the cluster's rank-0 node.
pub(crate) struct ClusterProbe {
    cluster: u16,
    ranks: Vec<u32>,
    /// Global arena index of the cluster's rank 0 (health-table base).
    base: usize,
    period: Duration,
    next_round: Instant,
    /// Failure generation each reported rank was reported *at*. A rank
    /// whose current generation differs was revived in between (and, if
    /// failed again, is a fresh failure to report) — this is how a
    /// revive-then-refail inside one probe period is still re-detected.
    reported: HashMap<u32, u64>,
}

impl ClusterProbe {
    pub(crate) fn new(
        cluster: u16,
        ranks: Vec<u32>,
        base: usize,
        cfg: HeartbeatConfig,
        now: Instant,
    ) -> Self {
        ClusterProbe {
            cluster,
            ranks,
            base,
            period: cfg.period,
            next_round: now + cfg.period,
            reported: HashMap::new(),
        }
    }

    /// When the owning shard must next wake to run a round.
    pub(crate) fn next_deadline(&self) -> Instant {
        self.next_round
    }

    /// Run a detection round if one is due.
    pub(crate) fn tick(&mut self, now: Instant, routes: &Routes, health: &Health) {
        if now < self.next_round {
            return;
        }
        self.next_round = now + self.period;
        let mut newly_failed: Vec<(u32, u64)> = Vec::new();
        let mut detector_rank: Option<u32> = None;
        for &r in &self.ranks {
            let generation = health.generation(self.base + r as usize);
            if Health::is_failed_generation(generation) {
                // A failure is new unless this exact generation was
                // already reported (an older recorded generation means
                // revive-then-refail: report again).
                if self.reported.get(&r) != Some(&generation) {
                    newly_failed.push((r, generation));
                }
            } else {
                self.reported.remove(&r);
                // Lowest-ranked live node: the ranks iterate ascending.
                detector_rank.get_or_insert(r);
            }
        }
        if newly_failed.is_empty() {
            return;
        }
        // Report to the lowest-ranked live node, which initiates the
        // cluster rollback. No survivor at all means the whole cluster is
        // gone — excluded by the fail-stop model; retry next round.
        if let Some(det) = detector_rank {
            let _ = routes.send(
                NodeId::new(self.cluster, det),
                Envelope::DetectMulti {
                    failed_ranks: newly_failed.iter().map(|&(r, _)| r).collect(),
                },
            );
            self.reported.extend(newly_failed);
        }
    }
}
