//! Heartbeat failure detection.
//!
//! The paper scopes the failure detector out ("the description of the
//! failure detector is out of the scope of this paper"); a runnable
//! messaging layer still needs one. One detector thread per cluster pings
//! every node each `period`; nodes that miss a whole round are reported to
//! the lowest-ranked responsive node, which initiates the cluster rollback.
//! A node revived by the rollback starts answering pings again and is
//! eligible for re-detection later.

use crate::envelope::Envelope;
use crossbeam::channel::{self, Sender};
use netsim::NodeId;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Heartbeat parameters.
#[derive(Debug, Clone, Copy)]
pub struct HeartbeatConfig {
    /// Time between probe rounds.
    pub period: Duration,
    /// How long to wait for pongs within a round.
    pub timeout: Duration,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            period: Duration::from_millis(50),
            timeout: Duration::from_millis(25),
        }
    }
}

pub(crate) struct ClusterDetector {
    pub handle: JoinHandle<()>,
}

pub(crate) fn spawn_cluster_detector(
    cluster: u16,
    ranks: Vec<u32>,
    routes: std::collections::HashMap<NodeId, Sender<Envelope>>,
    cfg: HeartbeatConfig,
    stop: Arc<AtomicBool>,
) -> ClusterDetector {
    let handle = std::thread::Builder::new()
        .name(format!("hc3i-detector-C{cluster}"))
        .spawn(move || {
            let mut seq = 0u64;
            // Ranks already reported and not yet seen alive again.
            let mut reported: HashSet<u32> = HashSet::new();
            while !stop.load(Ordering::Relaxed) {
                seq += 1;
                let (reply_tx, reply_rx) = channel::unbounded();
                for &r in &ranks {
                    if let Some(tx) = routes.get(&NodeId::new(cluster, r)) {
                        // A disconnected mailbox means shutdown.
                        if tx
                            .send(Envelope::Ping {
                                seq,
                                reply: reply_tx.clone(),
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                }
                drop(reply_tx);
                let deadline = std::time::Instant::now() + cfg.timeout;
                let mut alive: HashSet<u32> = HashSet::new();
                loop {
                    let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                    if remaining.is_zero() {
                        break;
                    }
                    match reply_rx.recv_timeout(remaining) {
                        Ok((rank, s)) if s == seq => {
                            alive.insert(rank);
                        }
                        Ok(_) => {} // stale pong from a previous round
                        Err(_) => break,
                    }
                }
                // Revived nodes become reportable again.
                reported.retain(|r| !alive.contains(r));
                let newly_failed: Vec<u32> = ranks
                    .iter()
                    .copied()
                    .filter(|r| !alive.contains(r) && !reported.contains(r))
                    .collect();
                if !newly_failed.is_empty() {
                    if let Some(&detector_rank) = ranks.iter().find(|r| alive.contains(r)) {
                        let target = NodeId::new(cluster, detector_rank);
                        if let Some(tx) = routes.get(&target) {
                            let _ = tx.send(Envelope::DetectMulti {
                                failed_ranks: newly_failed.clone(),
                            });
                        }
                        reported.extend(newly_failed);
                    }
                    // No survivor responded: nothing to report to — the
                    // whole cluster is gone, which the fail-stop model
                    // excludes. Retry next round.
                }
                std::thread::sleep(cfg.period);
            }
        })
        .expect("spawn detector thread");
    ClusterDetector { handle }
}
