//! Property tests for the network model: FIFO ordering, causality and
//! conservation of accounting.

use desim::{SimDuration, SimTime};
use netsim::{ClusterId, ContentionModel, MessageClass, Network, NodeId, Topology};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
struct Send {
    gap_us: u64,
    from: (u16, u32),
    to: (u16, u32),
    bytes: u64,
    class_pick: u8,
}

fn send_strategy() -> impl Strategy<Value = Send> {
    (
        0u64..500,
        (0u16..2, 0u32..4),
        (0u16..2, 0u32..4),
        0u64..100_000,
        0u8..3,
    )
        .prop_filter_map("no self sends", |(gap_us, f, t, bytes, class_pick)| {
            (f != t).then_some(Send {
                gap_us,
                from: f,
                to: t,
                bytes,
                class_pick,
            })
        })
}

fn class_of(pick: u8) -> MessageClass {
    match pick {
        0 => MessageClass::App,
        1 => MessageClass::Protocol,
        _ => MessageClass::Ack,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arrivals_are_causal_and_fifo(
        sends in prop::collection::vec(send_strategy(), 1..120),
        contended in any::<bool>(),
    ) {
        let topo = Topology::paper_reference(2);
        let model = if contended {
            ContentionModel::InterClusterFifo
        } else {
            ContentionModel::Unlimited
        };
        let mut net = Network::new(topo).with_contention(model);
        let mut now = SimTime::ZERO;
        let mut last_arrival: std::collections::HashMap<(NodeId, NodeId), SimTime> =
            std::collections::HashMap::new();
        let mut per_class = [0u64; 3];

        for s in &sends {
            now += SimDuration::from_micros(s.gap_us);
            let from = NodeId::new(s.from.0, s.from.1);
            let to = NodeId::new(s.to.0, s.to.1);
            let class = class_of(s.class_pick);
            let arrival = net.send(now, from, to, s.bytes, class);
            // Causality: arrival strictly after the send.
            prop_assert!(arrival > now, "arrival {arrival} <= send {now}");
            // FIFO per directed channel.
            if let Some(&prev) = last_arrival.get(&(from, to)) {
                prop_assert!(arrival > prev, "channel reordering");
            }
            last_arrival.insert((from, to), arrival);
            per_class[s.class_pick.min(2) as usize] += 1;
        }

        // Conservation: accounting matches what we sent.
        prop_assert_eq!(net.total_by_class(MessageClass::App), per_class[0]);
        prop_assert_eq!(net.total_by_class(MessageClass::Protocol), per_class[1]);
        prop_assert_eq!(net.total_by_class(MessageClass::Ack), per_class[2]);
        let matrix_total: u64 = (0..2)
            .flat_map(|i| (0..2).map(move |j| (i, j)))
            .map(|(i, j)| {
                net.traffic(ClusterId(i), ClusterId(j), MessageClass::App).messages
                    + net.traffic(ClusterId(i), ClusterId(j), MessageClass::Protocol).messages
                    + net.traffic(ClusterId(i), ClusterId(j), MessageClass::Ack).messages
            })
            .sum();
        prop_assert_eq!(matrix_total, sends.len() as u64);
    }

    #[test]
    fn contention_never_speeds_anything_up(
        sends in prop::collection::vec(send_strategy(), 1..60),
    ) {
        let mk = |model| {
            let mut net = Network::new(Topology::paper_reference(2)).with_contention(model);
            let mut now = SimTime::ZERO;
            sends
                .iter()
                .map(|s| {
                    now += SimDuration::from_micros(s.gap_us);
                    net.send(
                        now,
                        NodeId::new(s.from.0, s.from.1),
                        NodeId::new(s.to.0, s.to.1),
                        s.bytes,
                        class_of(s.class_pick),
                    )
                })
                .collect::<Vec<_>>()
        };
        let free = mk(ContentionModel::Unlimited);
        let fifo = mk(ContentionModel::InterClusterFifo);
        for (a, b) in free.iter().zip(&fifo) {
            prop_assert!(b >= a, "contention made a message faster");
        }
    }
}

/// A random hostile schedule for the partition/reorder/loss interaction
/// property below.
#[derive(Debug, Clone)]
struct HostileScript {
    seed: u64,
    reorder_pct: u32,
    loss_pct: u32,
    dup_pct: u32,
    /// Partition windows `(start_ms, len_ms, oneway)` cutting cluster 0.
    windows: Vec<(u64, u64, bool)>,
    /// Gaps between consecutive sends, in milliseconds.
    gaps_ms: Vec<u64>,
}

fn hostile_script_strategy() -> impl Strategy<Value = HostileScript> {
    (
        0u64..(1 << 48),
        0u32..=100,
        0u32..=50,
        0u32..=50,
        prop::collection::vec((0u64..600, 1u64..300, any::<bool>()), 1..=3),
        prop::collection::vec(0u64..40, 1..150),
    )
        .prop_map(
            |(seed, reorder_pct, loss_pct, dup_pct, windows, gaps_ms)| HostileScript {
                seed,
                reorder_pct,
                loss_pct,
                dup_pct,
                windows,
                gaps_ms,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pin of the reorder × partition interaction: no matter how the
    /// reorder jitter, the loss draw, earlier holds and the FIFO clamp
    /// move an arrival around, a message sent before a severing window
    /// heals never lands inside that window — and messages a cut holds
    /// drain strictly in send order. (Regression: a reordered release
    /// used to bypass hold-and-drain and could arrive mid-outage.)
    #[test]
    fn no_arrival_lands_inside_an_active_partition_window(
        script in hostile_script_strategy(),
    ) {
        use netsim::{HostileNet, HostileSpec, PartitionSpec};

        let ms = |v: u64| SimTime::ZERO + SimDuration::from_millis(v);
        let cuts: Vec<PartitionSpec> = script
            .windows
            .iter()
            .map(|&(at, len, oneway)| PartitionSpec {
                at: ms(at),
                until: ms(at + len),
                group: vec![0],
                oneway,
            })
            .collect();
        let spec = HostileSpec::seeded(script.seed)
            .with_reorder(
                script.reorder_pct as f64 / 100.0,
                SimDuration::from_millis(400),
            )
            .with_loss(script.loss_pct as f64 / 100.0)
            .with_duplication(script.dup_pct as f64 / 100.0, SimDuration::from_millis(5));
        let mut h = HostileNet::new(spec, cuts.clone());

        let from = NodeId::new(0, 0);
        let to = NodeId::new(1, 0);
        let mut now = SimTime::ZERO;
        let mut last_held = SimTime::ZERO;
        for &gap in &script.gaps_ms {
            now += SimDuration::from_millis(gap);
            let base = now + SimDuration::from_millis(1);
            let o = h.post(now, from, to, base);
            if o.lost {
                prop_assert!(o.duplicate.is_none());
                prop_assert!(!o.held);
                continue;
            }
            for cut in &cuts {
                if cut.severs_directed(from.cluster, to.cluster) && now < cut.until {
                    prop_assert!(
                        !(o.arrival >= cut.at && o.arrival <= cut.until),
                        "sent {now}, arrival {} inside active window [{}, {}]",
                        o.arrival,
                        cut.at,
                        cut.until
                    );
                }
            }
            if o.held {
                prop_assert!(
                    o.arrival > last_held,
                    "held messages must drain in send order"
                );
                last_held = o.arrival;
            }
        }
    }
}
