//! Hostile-network fault model.
//!
//! The base [`Network`](crate::Network) is deliberately well-behaved:
//! reliable, FIFO, loss-free. The paper's evaluation only ever ran on such
//! a network, yet partition tolerance is exactly where hierarchical
//! checkpointing should earn its keep. This module layers adversarial
//! behaviour *on top of* the base model without touching its timing or
//! accounting:
//!
//! * **cluster partitions with scripted heals** — inter-cluster messages
//!   crossing an active cut are held in the WAN and arrive just after the
//!   heal, in send order; a cut can be *asymmetric*
//!   ([`PartitionSpec::oneway`]): A→B severed while B→A flows;
//! * **packet loss** — an inter-cluster message (or any *directed*
//!   cluster pair's messages, via [`HostileSpec::with_pair_loss`]) simply
//!   vanishes with probability `p`. Loss breaks the exactly-once transport
//!   the protocol engine assumes, so lossy runs are expected to pair it
//!   with the host-level reliability sub-layer (`hc3i_core::xport`):
//!   sender-side retransmission with exponential backoff plus
//!   receiver-side dedup restore exactly-once delivery *despite* loss —
//!   every retransmitted copy re-enters this post-processor and is drawn
//!   against loss independently;
//! * **message duplication** — a second copy of an inter-cluster message
//!   arrives a bounded delay after the first (the network charges nothing
//!   for the ghost copy, so traffic accounting is unchanged);
//! * **bounded reordering** — an inter-cluster message may overtake or be
//!   overtaken within a jitter bound (the SAN inside a cluster stays FIFO:
//!   the protocol's intra-cluster ordering is part of its machine model);
//! * **asymmetric per-cluster-pair latency skew** — each *directed* cluster
//!   pair can carry an extra base + jitter delay.
//!
//! The pipeline order is skew → reorder → loss → partition hold → FIFO
//! clamp → duplication. Loss and partition processing deliberately run
//! *after* the reorder reschedule: a reorder jitter can push an arrival
//! into a partition window that opens later, and the hold must still
//! catch it (messages never sneak through an active cut, and a message
//! held by a cut drains in send order even if it was reordered first).
//!
//! Every random decision is drawn from a per-*directed-cluster-pair*
//! SplitMix64 stream, derived from the [`HostileSpec`] seed and the pair
//! (see [`HostileNet::pair_seed`]). Runs remain a pure function of their
//! configuration, a spec with all features disabled draws nothing — and,
//! because a pair's draws depend only on that pair's own message order
//! (never on how traffic of *other* pairs interleaves globally), hostile
//! outcomes are invariant under partitioning the federation across
//! parallel simulator shards: each sender cluster lives on exactly one
//! shard, which owns all of its pairs' streams.

use crate::hashing::FastHashMap;
use crate::ids::{ClusterId, NodeId};
use desim::{SimDuration, SimTime};

/// SplitMix64 generator, embedded so the fault model needs no external RNG
/// dependency and its draws cannot perturb any other stream of a run.
#[derive(Debug, Clone)]
pub struct Mix64 {
    state: u64,
}

impl Mix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        Mix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform duration in `[0, max)`; zero for a zero bound.
    pub fn jitter(&mut self, max: SimDuration) -> SimDuration {
        if max.nanos() == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(self.next_u64() % max.nanos())
    }

    /// Uniform draw from `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        self.next_u64() % n
    }
}

/// Extra one-way delay for a directed cluster pair: a fixed base plus a
/// uniform jitter in `[0, jitter)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyDist {
    /// Deterministic extra delay added to every message of the pair.
    pub base: SimDuration,
    /// Upper bound of the uniform random component.
    pub jitter: SimDuration,
}

impl LatencyDist {
    fn sample(&self, rng: &mut Mix64) -> SimDuration {
        self.base.saturating_add(rng.jitter(self.jitter))
    }
}

/// A scripted cluster partition: from `at` until `until`, the clusters in
/// `group` cannot exchange messages with the clusters outside it.
///
/// Messages crossing the cut while it is active are *held*, not dropped —
/// the model is a WAN outage with retransmission, so held messages arrive
/// just after the heal, still in per-channel send order.
///
/// A `oneway` cut is asymmetric: only traffic *from* the `group` side *to*
/// the outside is severed; the reverse direction flows normally. This is
/// the classic half-open WAN failure (A's packets to B blackholed while
/// B→A still delivers) that a symmetric model cannot express.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Cut activation time.
    pub at: SimTime,
    /// Heal time (exclusive: messages flow again from here on).
    pub until: SimTime,
    /// Clusters on one side of the cut; every other cluster is on the
    /// other side.
    pub group: Vec<u16>,
    /// Asymmetric cut: only `group` → outside is severed; outside →
    /// `group` traffic flows.
    pub oneway: bool,
}

impl PartitionSpec {
    /// True if the cut separates clusters `a` and `b` in at least one
    /// direction.
    pub fn severs(&self, a: ClusterId, b: ClusterId) -> bool {
        self.group.contains(&a.0) != self.group.contains(&b.0)
    }

    /// True if the cut severs the *directed* path `from → to`.
    pub fn severs_directed(&self, from: ClusterId, to: ClusterId) -> bool {
        if self.oneway {
            self.group.contains(&from.0) && !self.group.contains(&to.0)
        } else {
            self.severs(from, to)
        }
    }
}

/// Seeded hostile-network behaviour. The default spec disables everything
/// and draws no random numbers, so it composes with scripted partitions
/// without perturbing their determinism.
#[derive(Debug, Clone, Default)]
pub struct HostileSpec {
    /// Seed of the embedded generator.
    pub seed: u64,
    /// Probability that an inter-cluster message is duplicated.
    pub duplication: f64,
    /// Upper bound of the duplicate copy's extra delay beyond the original
    /// arrival.
    pub dup_delay: SimDuration,
    /// Probability that an inter-cluster message is released from FIFO
    /// order and delayed by a jitter (allowing later sends to overtake it).
    pub reorder: f64,
    /// Upper bound of the reordering jitter.
    pub reorder_jitter: SimDuration,
    /// Per *directed* cluster-pair latency skew `(from, to, dist)`.
    pub skew: Vec<(u16, u16, LatencyDist)>,
    /// Probability that an inter-cluster message vanishes on the wire
    /// (applies to every directed pair without an explicit override).
    pub loss: f64,
    /// Per *directed* cluster-pair loss overrides `(from, to, p)`.
    pub pair_loss: Vec<(u16, u16, f64)>,
}

impl HostileSpec {
    /// A spec with everything off, drawing from `seed` once features are
    /// enabled.
    pub fn seeded(seed: u64) -> Self {
        HostileSpec {
            seed,
            ..Default::default()
        }
    }

    /// Enable duplication of inter-cluster messages.
    pub fn with_duplication(mut self, p: f64, dup_delay: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.duplication = p;
        self.dup_delay = dup_delay;
        self
    }

    /// Enable bounded reordering of inter-cluster messages.
    pub fn with_reorder(mut self, p: f64, jitter: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.reorder = p;
        self.reorder_jitter = jitter;
        self
    }

    /// Add an asymmetric latency skew on the directed pair `from → to`.
    pub fn with_skew(mut self, from: u16, to: u16, dist: LatencyDist) -> Self {
        self.skew.push((from, to, dist));
        self
    }

    /// Drop every inter-cluster message with probability `p`.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.loss = p;
        self
    }

    /// Override the loss probability of the directed pair `from → to`.
    pub fn with_pair_loss(mut self, from: u16, to: u16, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.pair_loss.push((from, to, p));
        self
    }

    /// True if any loss probability is non-zero.
    pub fn has_loss(&self) -> bool {
        self.loss > 0.0 || self.pair_loss.iter().any(|&(_, _, p)| p > 0.0)
    }

    /// True if no feature is enabled (partitions are configured
    /// separately).
    pub fn is_quiet(&self) -> bool {
        self.duplication <= 0.0 && self.reorder <= 0.0 && self.skew.is_empty() && !self.has_loss()
    }
}

/// What the hostile layer did to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostileOutcome {
    /// Possibly-adjusted arrival time of the (first) copy.
    pub arrival: SimTime,
    /// Arrival time of a duplicate copy, if one was injected.
    pub duplicate: Option<SimTime>,
    /// The message was held by an active partition.
    pub held: bool,
    /// The message vanished on the wire — the caller must not schedule a
    /// delivery (the `arrival` field is meaningless in this case).
    pub lost: bool,
}

/// Post-processor applied to every scheduled delivery. Owns its own FIFO
/// clamp state: once any message of a run is touched, arrival order per
/// channel is re-established here (except where reordering deliberately
/// breaks it).
#[derive(Debug)]
pub struct HostileNet {
    spec: HostileSpec,
    partitions: Vec<PartitionSpec>,
    /// Lazily-seeded per-directed-cluster-pair streams (see
    /// [`Self::pair_seed`]).
    rngs: FastHashMap<(u16, u16), Mix64>,
    skew: FastHashMap<(u16, u16), LatencyDist>,
    pair_loss: FastHashMap<(u16, u16), f64>,
    last_arrival: FastHashMap<(NodeId, NodeId), SimTime>,
    /// Messages held at a partition cut.
    pub held: u64,
    /// Duplicate copies injected.
    pub duplicates: u64,
    /// Messages released from FIFO order.
    pub reordered: u64,
    /// Messages that vanished on the wire.
    pub lost: u64,
}

impl HostileNet {
    /// Build from a spec and a scripted partition schedule.
    pub fn new(spec: HostileSpec, partitions: Vec<PartitionSpec>) -> Self {
        for p in &partitions {
            assert!(p.at < p.until, "partition heals before it starts");
        }
        let mut skew = FastHashMap::default();
        for &(from, to, dist) in &spec.skew {
            skew.insert((from, to), dist);
        }
        let mut pair_loss = FastHashMap::default();
        for &(from, to, p) in &spec.pair_loss {
            pair_loss.insert((from, to), p);
        }
        HostileNet {
            spec,
            partitions,
            rngs: FastHashMap::default(),
            skew,
            pair_loss,
            last_arrival: FastHashMap::default(),
            held: 0,
            duplicates: 0,
            reordered: 0,
            lost: 0,
        }
    }

    /// The partition schedule.
    pub fn partitions(&self) -> &[PartitionSpec] {
        &self.partitions
    }

    /// Seed of the directed pair `from → to`'s embedded stream: one
    /// SplitMix64 scramble of the spec seed and the pair identity. Pure
    /// function, exposed so tests can reproduce a pair's draw sequence.
    pub fn pair_seed(seed: u64, from: ClusterId, to: ClusterId) -> u64 {
        let pair = ((from.0 as u64) << 32) | to.0 as u64;
        Mix64::new(seed ^ pair.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
    }

    /// Post-process one delivery scheduled by the base network: apply
    /// latency skew, reordering, loss, partition holds and duplication, in
    /// that order. `arrival` is the base network's arrival time (already
    /// FIFO per channel).
    ///
    /// Loss and partition holds run *after* the reorder reschedule on
    /// purpose: the reorder jitter moves the arrival, and whether a
    /// message crosses an active cut must be judged against where it
    /// actually lands, not where FIFO would have put it.
    pub fn post(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        arrival: SimTime,
    ) -> HostileOutcome {
        let inter = from.cluster != to.cluster;
        let mut arrival = arrival;
        let mut reordered = false;
        let mut held = false;

        // All random decisions for this message come from the directed
        // pair's own stream — the shard-invariance contract (see the
        // module docs).
        let seed = self.spec.seed;
        let rng = self
            .rngs
            .entry((from.cluster.0, to.cluster.0))
            .or_insert_with(|| Mix64::new(Self::pair_seed(seed, from.cluster, to.cluster)));

        // 1. Asymmetric per-pair latency skew.
        if let Some(dist) = self.skew.get(&(from.cluster.0, to.cluster.0)).copied() {
            arrival = arrival.saturating_add(dist.sample(rng));
        }

        // 2. Bounded reordering: the message is released from FIFO order
        //    and pushed back by a jitter, letting later sends overtake it.
        //    Inter-cluster only: the protocol's correctness argument leans
        //    on intra-cluster (SAN) FIFO, e.g. RollbackOrder preceding
        //    AlertLocal on every channel.
        if inter && self.spec.reorder > 0.0 && rng.chance(self.spec.reorder) {
            arrival = arrival.saturating_add(rng.jitter(self.spec.reorder_jitter));
            reordered = true;
            self.reordered += 1;
        }

        // 3. Packet loss: the message vanishes. A lost message constrains
        //    nothing downstream — no partition hold, no FIFO clamp state,
        //    no duplicate — so the early return is the whole story.
        if inter {
            let p = self
                .pair_loss
                .get(&(from.cluster.0, to.cluster.0))
                .copied()
                .unwrap_or(self.spec.loss);
            if p > 0.0 && rng.chance(p) {
                self.lost += 1;
                return HostileOutcome {
                    arrival,
                    duplicate: None,
                    held: false,
                    lost: true,
                };
            }
        }

        // 4. Partition hold: a message crossing an active cut sits in the
        //    WAN until the heal. The FIFO clamp below then serializes all
        //    held messages of a channel in send order after the heal.
        //    Every window is re-checked after a bump (no early break): a
        //    reorder jitter or an earlier hold's release can land the
        //    arrival inside a *later* window, which must hold it again —
        //    otherwise a message sneaks through mid-outage.
        if inter {
            let mut bumped = true;
            while bumped {
                bumped = false;
                for p in &self.partitions {
                    if p.severs_directed(from.cluster, to.cluster)
                        && now < p.until
                        && arrival >= p.at
                    {
                        let release = p.until.saturating_add(SimDuration::from_nanos(1));
                        if release > arrival {
                            arrival = release;
                            bumped = true;
                            if !held {
                                held = true;
                                self.held += 1;
                            }
                        }
                    }
                }
            }
        }

        // 5. Re-establish per-channel FIFO unless this message was
        //    deliberately reordered — but a held message always drains in
        //    send order: the hold-and-drain contract of a cut overrides
        //    the reorder release.
        let last = self.last_arrival.entry((from, to)).or_insert(SimTime::ZERO);
        if (!reordered || held) && *last != SimTime::ZERO && arrival <= *last {
            arrival = last.saturating_add(SimDuration::from_nanos(1));
        }
        *last = (*last).max(arrival);

        // 6. Duplication: a ghost copy arrives after the original. The
        //    base network never sees it, so byte/message accounting is
        //    untouched by construction.
        let duplicate = if inter && self.spec.duplication > 0.0 && rng.chance(self.spec.duplication)
        {
            self.duplicates += 1;
            Some(
                arrival
                    .saturating_add(SimDuration::from_nanos(1))
                    .saturating_add(rng.jitter(self.spec.dup_delay)),
            )
        } else {
            None
        };

        HostileOutcome {
            arrival,
            duplicate,
            held,
            lost: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(c: u16, r: u32) -> NodeId {
        NodeId::new(c, r)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn quiet_spec_is_identity() {
        let mut h = HostileNet::new(HostileSpec::seeded(1), vec![]);
        for i in 0..100u64 {
            let at = t(i + 1);
            let o = h.post(t(i), n(0, 0), n(1, 0), at);
            assert_eq!(o.arrival, at);
            assert_eq!(o.duplicate, None);
            assert!(!o.held);
        }
        assert_eq!(h.duplicates + h.held + h.reordered, 0);
    }

    #[test]
    fn partition_holds_crossing_messages_until_heal() {
        let cut = PartitionSpec {
            at: t(100),
            until: t(200),
            group: vec![0],
            oneway: false,
        };
        let mut h = HostileNet::new(HostileSpec::default(), vec![cut]);
        // Sent and arriving before the cut: untouched.
        assert_eq!(h.post(t(10), n(0, 0), n(1, 0), t(11)).arrival, t(11));
        // In flight when the cut activates: held to the heal.
        let o = h.post(t(99), n(0, 0), n(1, 0), t(101));
        assert!(o.held);
        assert!(o.arrival > t(200));
        // Sent mid-outage: held too, and FIFO after the earlier hold.
        let o2 = h.post(t(150), n(0, 0), n(1, 0), t(151));
        assert!(o2.held);
        assert!(o2.arrival > o.arrival, "heal releases in send order");
        // Sent after the heal: flows normally (but FIFO after the held).
        let o3 = h.post(t(250), n(0, 0), n(1, 0), t(251));
        assert!(!o3.held);
        assert_eq!(o3.arrival, t(251));
        assert_eq!(h.held, 2);
    }

    #[test]
    fn partition_spares_same_side_and_intra_traffic() {
        let cut = PartitionSpec {
            at: t(0) + SimDuration::from_nanos(1),
            until: t(1000),
            group: vec![0, 1],
            oneway: false,
        };
        assert!(cut.severs(ClusterId(0), ClusterId(2)));
        assert!(!cut.severs(ClusterId(0), ClusterId(1)));
        assert!(!cut.severs(ClusterId(2), ClusterId(3)));
        let mut h = HostileNet::new(HostileSpec::default(), vec![cut]);
        // Same side of the cut: untouched.
        assert!(!h.post(t(10), n(0, 0), n(1, 0), t(11)).held);
        // Intra-cluster: untouched even mid-outage.
        assert!(!h.post(t(10), n(2, 0), n(2, 1), t(11)).held);
        // Across the cut: held.
        assert!(h.post(t(10), n(0, 0), n(2, 0), t(11)).held);
    }

    #[test]
    fn duplication_is_inter_cluster_only_and_after_original() {
        let spec = HostileSpec::seeded(7).with_duplication(1.0, SimDuration::from_millis(5));
        let mut h = HostileNet::new(spec, vec![]);
        let o = h.post(t(0), n(0, 0), n(1, 0), t(1));
        let dup = o.duplicate.expect("p=1 duplicates");
        assert!(dup > o.arrival);
        assert!(dup <= o.arrival + SimDuration::from_millis(5) + SimDuration::from_nanos(1));
        // Intra-cluster messages are never duplicated (the SAN is
        // exactly-once; 2PC control traffic must not be replayed).
        let o2 = h.post(t(2), n(1, 0), n(1, 1), t(3));
        assert_eq!(o2.duplicate, None);
        assert_eq!(h.duplicates, 1);
    }

    #[test]
    fn reordering_breaks_fifo_only_for_chosen_messages() {
        let spec = HostileSpec::seeded(3).with_reorder(1.0, SimDuration::from_millis(10));
        let mut h = HostileNet::new(spec, vec![]);
        let o1 = h.post(t(0), n(0, 0), n(1, 0), t(1));
        assert!(o1.arrival >= t(1));
        // Intra stays FIFO and un-jittered.
        let i1 = h.post(t(0), n(0, 0), n(0, 1), t(1));
        assert_eq!(i1.arrival, t(1));
        assert_eq!(h.reordered, 1);
    }

    #[test]
    fn skew_applies_to_one_direction_only() {
        let dist = LatencyDist {
            base: SimDuration::from_millis(50),
            jitter: SimDuration::ZERO,
        };
        let spec = HostileSpec::seeded(11).with_skew(0, 1, dist);
        let mut h = HostileNet::new(spec, vec![]);
        assert_eq!(h.post(t(0), n(0, 0), n(1, 0), t(1)).arrival, t(51));
        assert_eq!(h.post(t(0), n(1, 0), n(0, 0), t(1)).arrival, t(1));
    }

    #[test]
    fn same_seed_same_outcomes() {
        let mk = || {
            let spec = HostileSpec::seeded(99)
                .with_duplication(0.5, SimDuration::from_millis(2))
                .with_reorder(0.5, SimDuration::from_millis(2));
            let mut h = HostileNet::new(spec, vec![]);
            (0..200u64)
                .map(|i| h.post(t(i), n(0, 0), n(1, 0), t(i + 1)))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn pair_streams_are_independent() {
        // Interleaving traffic of another pair must not perturb a pair's
        // own outcome sequence — the invariant that makes hostile runs
        // identical under any sharding of the federation.
        let spec = || {
            HostileSpec::seeded(4242)
                .with_duplication(0.5, SimDuration::from_millis(2))
                .with_reorder(0.5, SimDuration::from_millis(2))
                .with_loss(0.3)
        };
        let solo: Vec<_> = {
            let mut h = HostileNet::new(spec(), vec![]);
            (0..100u64)
                .map(|i| h.post(t(i), n(0, 0), n(1, 0), t(i + 1)))
                .collect()
        };
        let interleaved: Vec<_> = {
            let mut h = HostileNet::new(spec(), vec![]);
            (0..100u64)
                .map(|i| {
                    // Alien traffic on three other directed pairs between
                    // every probed message.
                    let _ = h.post(t(i), n(2, 0), n(3, 0), t(i + 1));
                    let _ = h.post(t(i), n(1, 0), n(0, 0), t(i + 1));
                    let _ = h.post(t(i), n(3, 0), n(0, 0), t(i + 1));
                    h.post(t(i), n(0, 0), n(1, 0), t(i + 1))
                })
                .collect()
        };
        assert_eq!(solo, interleaved);
    }

    #[test]
    fn loss_drops_inter_cluster_messages_only() {
        let spec = HostileSpec::seeded(13).with_loss(1.0);
        let mut h = HostileNet::new(spec, vec![]);
        let o = h.post(t(0), n(0, 0), n(1, 0), t(1));
        assert!(o.lost);
        assert_eq!(o.duplicate, None);
        assert!(!o.held);
        // Intra-cluster (SAN) traffic is never lost.
        let i = h.post(t(0), n(0, 0), n(0, 1), t(1));
        assert!(!i.lost);
        assert_eq!(h.lost, 1);
    }

    #[test]
    fn pair_loss_overrides_global_loss_per_direction() {
        let spec = HostileSpec::seeded(21)
            .with_loss(1.0)
            .with_pair_loss(1, 0, 0.0);
        let mut h = HostileNet::new(spec, vec![]);
        assert!(h.post(t(0), n(0, 0), n(1, 0), t(1)).lost);
        assert!(!h.post(t(0), n(1, 0), n(0, 0), t(1)).lost);
        assert!(HostileSpec::seeded(1).with_pair_loss(0, 1, 0.5).has_loss());
        assert!(!HostileSpec::seeded(1).with_pair_loss(0, 1, 0.0).has_loss());
    }

    #[test]
    fn lost_messages_leave_no_hold_or_clamp_debt() {
        // A lost message is drawn out *before* the partition hold and the
        // FIFO clamp, so it must not drag the channel's clamp state to the
        // heal time. Find a spec seed whose 0→1 pair stream loses the
        // first draw and keeps the second.
        let seed = (0u64..)
            .find(|&s| {
                let mut m = Mix64::new(HostileNet::pair_seed(s, ClusterId(0), ClusterId(1)));
                m.chance(0.5) && !m.chance(0.5)
            })
            .unwrap();
        let cut = PartitionSpec {
            at: t(100),
            until: t(200),
            group: vec![0],
            oneway: false,
        };
        let mut h = HostileNet::new(HostileSpec::seeded(seed).with_loss(0.5), vec![cut]);
        let first = h.post(t(10), n(0, 0), n(1, 0), t(101));
        assert!(first.lost);
        let second = h.post(t(10), n(0, 0), n(1, 0), t(102));
        assert!(!second.lost);
        assert!(second.held);
        // Exactly heal + 1 ns: the lost copy left no clamp debt behind.
        assert_eq!(second.arrival, t(200) + SimDuration::from_nanos(1));
        assert_eq!(h.lost, 1);
        assert_eq!(h.held, 1);
    }

    #[test]
    fn oneway_partition_cuts_one_direction_only() {
        let cut = PartitionSpec {
            at: t(100),
            until: t(200),
            group: vec![0],
            oneway: true,
        };
        assert!(cut.severs_directed(ClusterId(0), ClusterId(1)));
        assert!(!cut.severs_directed(ClusterId(1), ClusterId(0)));
        let mut h = HostileNet::new(HostileSpec::default(), vec![cut]);
        // 0 → 1 mid-outage: held to the heal.
        let o = h.post(t(120), n(0, 0), n(1, 0), t(121));
        assert!(o.held);
        assert!(o.arrival > t(200));
        // 1 → 0 mid-outage: flows.
        let back = h.post(t(120), n(1, 0), n(0, 0), t(121));
        assert!(!back.held);
        assert_eq!(back.arrival, t(121));
        assert_eq!(h.held, 1);
    }

    #[test]
    fn hold_release_cannot_land_inside_a_later_window() {
        // Regression: with `break` after the first matching window, a
        // hold's release time (window 1 heal + 1 ns) landed inside window
        // 2 and was delivered mid-outage. The fixpoint loop re-checks.
        let cuts = vec![
            PartitionSpec {
                at: t(100),
                until: t(200),
                group: vec![0],
                oneway: false,
            },
            PartitionSpec {
                at: t(200),
                until: t(300),
                group: vec![0],
                oneway: false,
            },
        ];
        let mut h = HostileNet::new(HostileSpec::default(), cuts);
        let o = h.post(t(110), n(0, 0), n(1, 0), t(111));
        assert!(o.held);
        assert!(
            o.arrival > t(300),
            "released at {:?}, inside the second outage",
            o.arrival
        );
    }

    #[test]
    fn reordered_message_still_held_and_drained_in_order() {
        // Regression: a reordered release used to skip the FIFO clamp even
        // when a partition held it, so it could drain out of send order —
        // or, with a jitter pushing the arrival past `at`, arrive
        // mid-outage. Reorder p=1 with a jitter wide enough to jump into
        // the partition window.
        let spec = HostileSpec::seeded(77).with_reorder(1.0, SimDuration::from_millis(500));
        let cut = PartitionSpec {
            at: t(100),
            until: t(400),
            group: vec![0],
            oneway: false,
        };
        let mut h = HostileNet::new(spec, vec![cut]);
        let mut prev = SimTime::ZERO;
        for i in 0..50u64 {
            let o = h.post(t(i), n(0, 0), n(1, 0), t(i + 1));
            assert!(
                !(o.arrival >= t(100) && o.arrival < t(400)),
                "arrival {:?} inside the active cut",
                o.arrival
            );
            if o.held {
                assert!(o.arrival > prev, "held messages drain in send order");
                prev = o.arrival;
            }
        }
        assert!(h.held > 0, "jitter should have pushed sends into the cut");
    }

    #[test]
    fn chance_extremes_draw_nothing_at_zero() {
        let mut a = Mix64::new(5);
        assert!(!a.chance(0.0));
        assert!(a.chance(1.0));
        let before = a.clone().next_u64();
        // p=0 must not consume a draw (quiet specs stay draw-free).
        assert!(!a.chance(-1.0));
        assert_eq!(a.next_u64(), before);
    }

    #[test]
    #[should_panic(expected = "heals before")]
    fn inverted_partition_window_rejected() {
        let _ = HostileNet::new(
            HostileSpec::default(),
            vec![PartitionSpec {
                at: t(10),
                until: t(5),
                group: vec![0],
                oneway: false,
            }],
        );
    }
}
