//! Message delivery timing and traffic accounting.
//!
//! The network is reliable ("a sent message will be received in an arbitrary
//! but finite laps of time" — paper §2.1): no loss, no duplication. We add
//! per-directed-channel FIFO ordering, which is what a SAN or a TCP-backed
//! WAN link provides in practice and what keeps two-phase-commit rounds
//! simple.
//!
//! Delivery time = queueing (optional contention model) + serialization
//! (size / bandwidth) + propagation latency. Every message is also charged
//! to a `(from_cluster, to_cluster, class)` account — the paper's Table 1 is
//! exactly a dump of those accounts for the application class.

use crate::hashing::FastHashMap;
use crate::ids::{ClusterId, NodeId};
use crate::topology::{LinkSpec, Topology};
use desim::{SimDuration, SimTime};

/// What a message is, for accounting purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageClass {
    /// Application payload.
    App,
    /// Checkpointing-protocol control traffic (2PC rounds, alerts, GC).
    Protocol,
    /// Acknowledgements of inter-cluster application messages.
    Ack,
}

/// How concurrent transfers share a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContentionModel {
    /// Infinite capacity: every transfer sees full bandwidth (the classic
    /// latency+bandwidth DES model; paper-faithful for light traffic).
    #[default]
    Unlimited,
    /// Transfers on the same directed *cluster pair* serialize (models a
    /// single shared inter-cluster pipe; intra-cluster stays unlimited).
    InterClusterFifo,
}

/// Cumulative per-account traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficCell {
    /// Message count.
    pub messages: u64,
    /// Payload bytes.
    pub bytes: u64,
}

/// The network model: timing + accounting.
///
/// Hot-path layout: traffic accounts and contention pipes live in dense
/// `clusters × clusters` arrays (the cluster-pair domain is small and
/// known up front), and the per-node-channel FIFO state lives in dense
/// per-directed-cluster-pair rank tables (`ChannelFifo`) — `send`
/// performs no hashing at all for small/medium federations, and no
/// allocation after a cluster pair's first message.
pub struct Network {
    topology: Topology,
    contention: ContentionModel,
    n_clusters: usize,
    /// Per directed node channel: last scheduled arrival (FIFO ordering).
    channels: ChannelFifo,
    /// Per directed cluster pair: when the shared pipe frees up (dense
    /// `from * n + to`; `ZERO` = never used).
    pipe_free_at: Vec<SimTime>,
    /// Accounting: dense `(from * n + to) * 3 + class` cells.
    accounts: Vec<TrafficCell>,
    /// Memoized [`LinkSpec::transmit_time`] results, direct-mapped on
    /// `(bandwidth, bytes)`. A federation uses a handful of distinct
    /// link-class x message-size combinations, so this turns the per-send
    /// 128-bit division into a two-word compare (the cached value is the
    /// division's exact result — timing is unchanged, only cheaper).
    transmit_cache: [(u64, u64, SimDuration); TRANSMIT_CACHE_SLOTS],
}

const N_CLASSES: usize = 3;

/// Above this many clusters the `clusters × clusters` pair-index table
/// would dominate memory; fall back to one global hash map.
const MAX_DENSE_CLUSTERS: usize = 2048;
/// A cluster pair's `from_ranks × to_ranks` channel table is allocated
/// densely up to this many cells (512 KiB); larger pairs hash per pair.
const DENSE_CHANNEL_LIMIT: usize = 65_536;
/// Slots in the transmit-time memo (power of two; collisions just recompute).
const TRANSMIT_CACHE_SLOTS: usize = 16;

/// FIFO last-arrival state for every directed node channel.
///
/// Channels are grouped by directed cluster pair; each pair's table is
/// allocated lazily on its first message, dense (`from_rank * to_ranks +
/// to_rank`) when small enough. `SimTime::ZERO` means "channel never
/// used" — a real arrival is always strictly later.
enum ChannelFifo {
    /// `pair_index[from * n + to]` points into `pairs` (`u32::MAX` =
    /// untouched pair).
    Dense {
        pair_index: Vec<u32>,
        pairs: Vec<PairFifo>,
    },
    /// Huge federation: one flat hash over `(from, to)` node pairs.
    Global(FastHashMap<(NodeId, NodeId), SimTime>),
}

/// One directed cluster pair's node-channel table.
enum PairFifo {
    /// `last[from_rank * to_ranks + to_rank]`.
    Dense { to_ranks: u32, last: Box<[SimTime]> },
    /// Clusters too large for a dense rank product.
    Hash(FastHashMap<(u32, u32), SimTime>),
}

#[inline]
fn class_index(class: MessageClass) -> usize {
    match class {
        MessageClass::App => 0,
        MessageClass::Protocol => 1,
        MessageClass::Ack => 2,
    }
}

impl Network {
    /// A network over `topology` with the default (unlimited) contention.
    pub fn new(topology: Topology) -> Self {
        let n = topology.num_clusters();
        let channels = if n <= MAX_DENSE_CLUSTERS {
            ChannelFifo::Dense {
                pair_index: vec![u32::MAX; n * n],
                pairs: Vec::new(),
            }
        } else {
            ChannelFifo::Global(FastHashMap::default())
        };
        Network {
            topology,
            contention: ContentionModel::default(),
            n_clusters: n,
            channels,
            pipe_free_at: vec![SimTime::ZERO; n * n],
            accounts: vec![TrafficCell::default(); n * n * N_CLASSES],
            // `bandwidth = 0` never occupies a slot (`transmit_time` is
            // INFINITE there and short-circuits before the cache), so the
            // zeroed sentinel rows can never produce a false hit.
            transmit_cache: [(0, 0, SimDuration::ZERO); TRANSMIT_CACHE_SLOTS],
        }
    }

    /// `link.transmit_time(bytes)` through the memo cache.
    #[inline]
    fn transmit_time(&mut self, link: &LinkSpec, bytes: u64) -> SimDuration {
        if link.bandwidth_bps == 0 {
            return SimDuration::INFINITE;
        }
        let slot = ((link
            .bandwidth_bps
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(bytes)) as usize)
            & (TRANSMIT_CACHE_SLOTS - 1);
        let (bps, b, t) = self.transmit_cache[slot];
        if bps == link.bandwidth_bps && b == bytes {
            return t;
        }
        let t = link.transmit_time(bytes);
        self.transmit_cache[slot] = (link.bandwidth_bps, bytes, t);
        t
    }

    #[inline]
    fn account_index(&self, from: ClusterId, to: ClusterId, class: MessageClass) -> usize {
        (from.index() * self.n_clusters + to.index()) * N_CLASSES + class_index(class)
    }

    /// Select the contention model.
    pub fn with_contention(mut self, model: ContentionModel) -> Self {
        self.contention = model;
        self
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Compute the arrival time of a message sent now, update FIFO state and
    /// charge the traffic account. Never returns a time `<= now`.
    pub fn send(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        class: MessageClass,
    ) -> SimTime {
        let link = self.topology.link_between(from.cluster, to.cluster);
        let transmit = self.transmit_time(&link, bytes);

        // Queueing under the chosen contention model.
        let depart = match self.contention {
            ContentionModel::Unlimited => now,
            ContentionModel::InterClusterFifo if from.cluster != to.cluster => {
                let pipe = &mut self.pipe_free_at
                    [from.cluster.index() * self.n_clusters + to.cluster.index()];
                let depart = (*pipe).max(now);
                *pipe = depart.saturating_add(transmit);
                depart
            }
            ContentionModel::InterClusterFifo => now,
        };

        let mut arrival = depart.saturating_add(transmit).saturating_add(link.latency);
        // Enforce FIFO per directed node channel.
        let last = match &mut self.channels {
            ChannelFifo::Dense { pair_index, pairs } => {
                let p = from.cluster.index() * self.n_clusters + to.cluster.index();
                let mut pi = pair_index[p];
                if pi == u32::MAX {
                    pi = pairs.len() as u32;
                    pair_index[p] = pi;
                    let nf = self.topology.nodes_in(from.cluster) as usize;
                    let nt = self.topology.nodes_in(to.cluster) as usize;
                    pairs.push(if nf * nt <= DENSE_CHANNEL_LIMIT {
                        PairFifo::Dense {
                            to_ranks: nt as u32,
                            last: vec![SimTime::ZERO; nf * nt].into_boxed_slice(),
                        }
                    } else {
                        PairFifo::Hash(FastHashMap::default())
                    });
                }
                match &mut pairs[pi as usize] {
                    PairFifo::Dense { to_ranks, last } => {
                        &mut last[from.rank as usize * *to_ranks as usize + to.rank as usize]
                    }
                    PairFifo::Hash(m) => m.entry((from.rank, to.rank)).or_insert(SimTime::ZERO),
                }
            }
            ChannelFifo::Global(m) => m.entry((from, to)).or_insert(SimTime::ZERO),
        };
        if arrival <= *last {
            arrival = last.saturating_add(SimDuration::from_nanos(1));
        }
        *last = arrival;

        // Make progress even for zero-latency zero-size sends.
        if arrival <= now {
            arrival = now.saturating_add(SimDuration::from_nanos(1));
        }

        let idx = self.account_index(from.cluster, to.cluster, class);
        let cell = &mut self.accounts[idx];
        cell.messages += 1;
        cell.bytes += bytes;

        arrival
    }

    /// Traffic charged to a `(from, to, class)` account. Out-of-range
    /// cluster ids report zero traffic (the function is total, as before
    /// the dense-array rewrite).
    pub fn traffic(&self, from: ClusterId, to: ClusterId, class: MessageClass) -> TrafficCell {
        if from.index() >= self.n_clusters || to.index() >= self.n_clusters {
            return TrafficCell::default();
        }
        self.accounts[self.account_index(from, to, class)]
    }

    /// All application messages from `from` to `to` (the Table 1 cells).
    pub fn app_messages(&self, from: ClusterId, to: ClusterId) -> u64 {
        self.traffic(from, to, MessageClass::App).messages
    }

    /// Total protocol-control messages (all cluster pairs).
    pub fn total_protocol_messages(&self) -> u64 {
        self.total_by_class(MessageClass::Protocol)
    }

    /// Every `(from, to)` account cell of one class, row-major.
    fn cells_of_class(
        &self,
        class: MessageClass,
    ) -> impl Iterator<Item = (usize, usize, &TrafficCell)> {
        let n = self.n_clusters;
        let k = class_index(class);
        (0..n).flat_map(move |f| {
            (0..n).map(move |t| (f, t, &self.accounts[(f * n + t) * N_CLASSES + k]))
        })
    }

    /// Total messages of one class across all accounts.
    pub fn total_by_class(&self, class: MessageClass) -> u64 {
        self.cells_of_class(class).map(|(_, _, c)| c.messages).sum()
    }

    /// Total bytes of one class across all accounts.
    pub fn total_bytes_by_class(&self, class: MessageClass) -> u64 {
        self.cells_of_class(class).map(|(_, _, c)| c.bytes).sum()
    }

    /// Inter-cluster messages of one class (excludes intra-cluster traffic).
    pub fn inter_cluster_by_class(&self, class: MessageClass) -> u64 {
        self.cells_of_class(class)
            .filter(|(f, t, _)| f != t)
            .map(|(_, _, c)| c.messages)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{ClusterSpec, LinkSpec};

    fn net() -> Network {
        Network::new(Topology::paper_reference(2))
    }

    fn t_us(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn intra_cluster_delivery_uses_san() {
        let mut n = net();
        // 1000 bytes over 80 Mb/s = 100 µs; + 10 µs latency.
        let arrival = n.send(
            SimTime::ZERO,
            NodeId::new(0, 0),
            NodeId::new(0, 1),
            1000,
            MessageClass::App,
        );
        assert_eq!(arrival, t_us(110));
    }

    #[test]
    fn inter_cluster_delivery_uses_wan() {
        let mut n = net();
        // 1000 bytes over 100 Mb/s = 80 µs; + 150 µs latency.
        let arrival = n.send(
            SimTime::ZERO,
            NodeId::new(0, 0),
            NodeId::new(1, 0),
            1000,
            MessageClass::App,
        );
        assert_eq!(arrival, t_us(230));
    }

    #[test]
    fn arrival_is_strictly_after_send() {
        let mut n = Network::new(Topology::new(
            vec![ClusterSpec {
                nodes: 2,
                intra: LinkSpec {
                    latency: SimDuration::ZERO,
                    bandwidth_bps: 1_000_000_000,
                },
            }],
            LinkSpec::ethernet_like(),
        ));
        let arrival = n.send(
            SimTime::ZERO,
            NodeId::new(0, 0),
            NodeId::new(0, 1),
            0,
            MessageClass::Protocol,
        );
        assert!(arrival > SimTime::ZERO);
    }

    #[test]
    fn channel_is_fifo() {
        let mut n = net();
        let from = NodeId::new(0, 0);
        let to = NodeId::new(1, 0);
        // Big message first, then a tiny one at the same instant: the tiny
        // one must not overtake.
        let a1 = n.send(SimTime::ZERO, from, to, 1_000_000, MessageClass::App);
        let a2 = n.send(SimTime::ZERO, from, to, 1, MessageClass::App);
        assert!(a2 > a1, "FIFO violated: {a2:?} <= {a1:?}");
    }

    #[test]
    fn distinct_channels_do_not_interfere() {
        let mut n = net();
        let a1 = n.send(
            SimTime::ZERO,
            NodeId::new(0, 0),
            NodeId::new(1, 0),
            1_000_000,
            MessageClass::App,
        );
        // Different sender: no FIFO coupling under Unlimited contention.
        let a2 = n.send(
            SimTime::ZERO,
            NodeId::new(0, 1),
            NodeId::new(1, 0),
            1,
            MessageClass::App,
        );
        assert!(a2 < a1);
    }

    #[test]
    fn inter_cluster_fifo_contention_serializes_pipe() {
        let mut n = Network::new(Topology::paper_reference(2))
            .with_contention(ContentionModel::InterClusterFifo);
        // Two 1 MB transfers from different senders share the 100 Mb/s pipe:
        // each takes 80 ms to serialize; the second departs only at 80 ms.
        let a1 = n.send(
            SimTime::ZERO,
            NodeId::new(0, 0),
            NodeId::new(1, 0),
            1_000_000,
            MessageClass::App,
        );
        let a2 = n.send(
            SimTime::ZERO,
            NodeId::new(0, 1),
            NodeId::new(1, 1),
            1_000_000,
            MessageClass::App,
        );
        assert_eq!(a1, SimTime::ZERO + SimDuration::from_micros(80_150));
        assert_eq!(a2, SimTime::ZERO + SimDuration::from_micros(160_150));
    }

    #[test]
    fn contention_does_not_affect_intra_cluster() {
        let mut n = Network::new(Topology::paper_reference(2))
            .with_contention(ContentionModel::InterClusterFifo);
        let a1 = n.send(
            SimTime::ZERO,
            NodeId::new(0, 0),
            NodeId::new(0, 1),
            1000,
            MessageClass::App,
        );
        let a2 = n.send(
            SimTime::ZERO,
            NodeId::new(0, 2),
            NodeId::new(0, 3),
            1000,
            MessageClass::App,
        );
        assert_eq!(a1, a2);
    }

    #[test]
    fn traffic_is_total_over_cluster_ids() {
        let n = net();
        assert_eq!(
            n.traffic(ClusterId(9), ClusterId(0), MessageClass::App),
            TrafficCell::default(),
            "out-of-range ids report zero traffic, not a panic"
        );
    }

    #[test]
    fn accounting_by_pair_and_class() {
        let mut n = net();
        let c0 = ClusterId(0);
        let c1 = ClusterId(1);
        n.send(
            SimTime::ZERO,
            NodeId::new(0, 0),
            NodeId::new(0, 1),
            10,
            MessageClass::App,
        );
        n.send(
            SimTime::ZERO,
            NodeId::new(0, 0),
            NodeId::new(1, 0),
            20,
            MessageClass::App,
        );
        n.send(
            SimTime::ZERO,
            NodeId::new(1, 0),
            NodeId::new(0, 0),
            30,
            MessageClass::Ack,
        );
        n.send(
            SimTime::ZERO,
            NodeId::new(0, 1),
            NodeId::new(0, 2),
            40,
            MessageClass::Protocol,
        );

        assert_eq!(n.app_messages(c0, c0), 1);
        assert_eq!(n.app_messages(c0, c1), 1);
        assert_eq!(n.app_messages(c1, c0), 0);
        assert_eq!(n.traffic(c1, c0, MessageClass::Ack).messages, 1);
        assert_eq!(n.traffic(c1, c0, MessageClass::Ack).bytes, 30);
        assert_eq!(n.total_protocol_messages(), 1);
        assert_eq!(n.total_by_class(MessageClass::App), 2);
        assert_eq!(n.total_bytes_by_class(MessageClass::App), 30);
        assert_eq!(n.inter_cluster_by_class(MessageClass::App), 1);
    }
}
