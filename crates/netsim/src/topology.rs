//! Federation topology.
//!
//! Mirrors the paper's *topology file*: number of clusters, nodes per
//! cluster, bandwidth and latency inside each cluster and between every
//! cluster pair (a triangular matrix), and the federation MTBF.

use crate::ids::ClusterId;
use desim::SimDuration;

/// Latency + bandwidth of a (bidirectional) link class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Usable bandwidth in bits per second.
    pub bandwidth_bps: u64,
}

impl LinkSpec {
    /// The paper's intra-cluster "Myrinet-like" SAN: 10 µs, 80 Mb/s.
    pub fn myrinet_like() -> Self {
        LinkSpec {
            latency: SimDuration::from_micros(10),
            bandwidth_bps: 80_000_000,
        }
    }

    /// The paper's inter-cluster "Ethernet-like" link: 150 µs, 100 Mb/s.
    pub fn ethernet_like() -> Self {
        LinkSpec {
            latency: SimDuration::from_micros(150),
            bandwidth_bps: 100_000_000,
        }
    }

    /// A slow WAN link (5 ms, 10 Mb/s) for wide-federation experiments.
    pub fn wan_like() -> Self {
        LinkSpec {
            latency: SimDuration::from_millis(5),
            bandwidth_bps: 10_000_000,
        }
    }

    /// Pure serialization time for a payload of `bytes` on this link.
    pub fn transmit_time(&self, bytes: u64) -> SimDuration {
        if self.bandwidth_bps == 0 {
            return SimDuration::INFINITE;
        }
        // bits / (bits/sec) -> sec; computed in nanoseconds to stay integral.
        let bits = bytes.saturating_mul(8);
        SimDuration::from_nanos(
            ((bits as u128 * 1_000_000_000u128) / self.bandwidth_bps as u128) as u64,
        )
    }
}

/// One cluster: node count plus its internal (SAN) link class.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Number of nodes in the cluster.
    pub nodes: u32,
    /// Link class joining any two nodes of the cluster.
    pub intra: LinkSpec,
}

/// A symmetric cluster-pair matrix stored as a lower triangle.
#[derive(Debug, Clone)]
pub struct TriMatrix<T> {
    n: usize,
    cells: Vec<T>,
}

impl<T: Copy> TriMatrix<T> {
    /// `n`×`n` symmetric matrix (diagonal excluded) filled with `fill`.
    pub fn new(n: usize, fill: T) -> Self {
        let cells = vec![fill; n * (n.saturating_sub(1)) / 2];
        TriMatrix { n, cells }
    }

    fn index(&self, i: usize, j: usize) -> usize {
        assert!(i != j, "triangular matrix has no diagonal");
        assert!(i < self.n && j < self.n, "cluster index out of range");
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        // Row `hi` of the lower triangle starts at hi*(hi-1)/2.
        hi * (hi - 1) / 2 + lo
    }

    /// Read the entry for the unordered pair `{i, j}`.
    pub fn get(&self, i: usize, j: usize) -> T {
        self.cells[self.index(i, j)]
    }

    /// Write the entry for the unordered pair `{i, j}`.
    pub fn set(&mut self, i: usize, j: usize, value: T) {
        let idx = self.index(i, j);
        self.cells[idx] = value;
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }
}

/// The whole federation: clusters + inter-cluster link matrix + MTBF.
#[derive(Debug, Clone)]
pub struct Topology {
    clusters: Vec<ClusterSpec>,
    inter: TriMatrix<LinkSpec>,
    /// Federation mean time between failures (None = no spontaneous faults).
    pub mtbf: Option<SimDuration>,
}

impl Topology {
    /// Build a federation of `clusters`, all inter-cluster pairs using
    /// `inter` (individual pairs can be overridden with [`set_inter_link`]).
    ///
    /// [`set_inter_link`]: Topology::set_inter_link
    pub fn new(clusters: Vec<ClusterSpec>, inter: LinkSpec) -> Self {
        assert!(
            !clusters.is_empty(),
            "a federation needs at least one cluster"
        );
        let n = clusters.len();
        Topology {
            clusters,
            inter: TriMatrix::new(n, inter),
            mtbf: None,
        }
    }

    /// The paper's reference setup (§5.2): `n` clusters of 100 nodes each,
    /// Myrinet-like SANs, Ethernet-like inter-cluster links.
    pub fn paper_reference(n: usize) -> Self {
        Topology::new(
            vec![
                ClusterSpec {
                    nodes: 100,
                    intra: LinkSpec::myrinet_like(),
                };
                n
            ],
            LinkSpec::ethernet_like(),
        )
    }

    /// Number of clusters in the federation.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Specification of one cluster.
    pub fn cluster(&self, c: ClusterId) -> &ClusterSpec {
        &self.clusters[c.index()]
    }

    /// Nodes in cluster `c`.
    pub fn nodes_in(&self, c: ClusterId) -> u32 {
        self.clusters[c.index()].nodes
    }

    /// Total nodes across the federation.
    pub fn total_nodes(&self) -> u64 {
        self.clusters.iter().map(|c| c.nodes as u64).sum()
    }

    /// Link class between two *distinct* clusters.
    pub fn inter_link(&self, a: ClusterId, b: ClusterId) -> LinkSpec {
        self.inter.get(a.index(), b.index())
    }

    /// Override the link class of one cluster pair.
    pub fn set_inter_link(&mut self, a: ClusterId, b: ClusterId, link: LinkSpec) {
        self.inter.set(a.index(), b.index(), link);
    }

    /// Link class used by a message from `from` to `to` (same- or
    /// cross-cluster).
    pub fn link_between(&self, from: ClusterId, to: ClusterId) -> LinkSpec {
        if from == to {
            self.clusters[from.index()].intra
        } else {
            self.inter_link(from, to)
        }
    }

    /// Iterate all cluster ids.
    pub fn cluster_ids(&self) -> impl Iterator<Item = ClusterId> {
        (0..self.clusters.len() as u16).map(ClusterId)
    }

    /// Conservative parallel-simulation lookahead: the minimum one-way
    /// propagation latency over all inter-cluster links, floored at 1 ns.
    ///
    /// No inter-cluster message can arrive sooner than this after it is
    /// sent (hostile skew/reorder/holds only *add* delay, and the wire
    /// floors every arrival at now + 1 ns), so a shard that owns a subset
    /// of clusters may safely run `lookahead` ahead of every other shard.
    /// A single-cluster federation has no inter-cluster links and thus no
    /// bound: [`SimDuration::INFINITE`].
    pub fn lookahead(&self) -> SimDuration {
        let mut min = SimDuration::INFINITE;
        let n = self.clusters.len();
        for i in 0..n {
            for j in (i + 1)..n {
                let l = self.inter.get(i, j).latency;
                if l < min {
                    min = l;
                }
            }
        }
        if min < SimDuration::from_nanos(1) {
            SimDuration::from_nanos(1)
        } else {
            min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmit_time_matches_bandwidth() {
        // 80 Mb/s -> 1 MB takes 0.1 s.
        let l = LinkSpec::myrinet_like();
        assert_eq!(l.transmit_time(1_000_000), SimDuration::from_millis(100));
        // Zero-size messages cost only latency.
        assert_eq!(l.transmit_time(0), SimDuration::ZERO);
    }

    #[test]
    fn zero_bandwidth_is_infinite() {
        let l = LinkSpec {
            latency: SimDuration::ZERO,
            bandwidth_bps: 0,
        };
        assert!(l.transmit_time(1).is_infinite());
    }

    #[test]
    fn trimatrix_is_symmetric() {
        let mut m = TriMatrix::new(4, 0u32);
        m.set(1, 3, 7);
        assert_eq!(m.get(3, 1), 7);
        assert_eq!(m.get(1, 3), 7);
        m.set(3, 1, 9);
        assert_eq!(m.get(1, 3), 9);
        assert_eq!(m.get(0, 1), 0);
    }

    #[test]
    #[should_panic(expected = "no diagonal")]
    fn trimatrix_rejects_diagonal() {
        TriMatrix::new(3, 0u32).get(2, 2);
    }

    #[test]
    fn trimatrix_indexing_covers_all_pairs() {
        let n = 6;
        let mut m = TriMatrix::new(n, 0usize);
        let mut v = 1;
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, v);
                v += 1;
            }
        }
        // Every pair readable from both orders with distinct values.
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    seen.insert(m.get(i, j));
                }
            }
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
    }

    #[test]
    fn paper_reference_matches_section_5_2() {
        let t = Topology::paper_reference(2);
        assert_eq!(t.num_clusters(), 2);
        assert_eq!(t.nodes_in(ClusterId(0)), 100);
        assert_eq!(t.total_nodes(), 200);
        let intra = t.link_between(ClusterId(0), ClusterId(0));
        assert_eq!(intra.latency, SimDuration::from_micros(10));
        assert_eq!(intra.bandwidth_bps, 80_000_000);
        let inter = t.link_between(ClusterId(0), ClusterId(1));
        assert_eq!(inter.latency, SimDuration::from_micros(150));
        assert_eq!(inter.bandwidth_bps, 100_000_000);
    }

    #[test]
    fn inter_link_override() {
        let mut t = Topology::paper_reference(3);
        t.set_inter_link(ClusterId(0), ClusterId(2), LinkSpec::wan_like());
        assert_eq!(
            t.link_between(ClusterId(2), ClusterId(0)).latency,
            SimDuration::from_millis(5)
        );
        // Other pairs untouched.
        assert_eq!(
            t.link_between(ClusterId(0), ClusterId(1)).latency,
            SimDuration::from_micros(150)
        );
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn empty_federation_rejected() {
        Topology::new(vec![], LinkSpec::ethernet_like());
    }

    #[test]
    fn lookahead_is_min_inter_latency() {
        let mut t = Topology::paper_reference(3);
        assert_eq!(t.lookahead(), SimDuration::from_micros(150));
        // A slower override does not change the minimum...
        t.set_inter_link(ClusterId(0), ClusterId(2), LinkSpec::wan_like());
        assert_eq!(t.lookahead(), SimDuration::from_micros(150));
        // ...but a faster one does.
        t.set_inter_link(
            ClusterId(1),
            ClusterId(2),
            LinkSpec {
                latency: SimDuration::from_micros(3),
                bandwidth_bps: 1_000_000_000,
            },
        );
        assert_eq!(t.lookahead(), SimDuration::from_micros(3));
    }

    #[test]
    fn lookahead_floors_at_one_nanosecond() {
        let mut t = Topology::paper_reference(2);
        t.set_inter_link(
            ClusterId(0),
            ClusterId(1),
            LinkSpec {
                latency: SimDuration::ZERO,
                bandwidth_bps: 1,
            },
        );
        assert_eq!(t.lookahead(), SimDuration::from_nanos(1));
    }

    #[test]
    fn single_cluster_has_unbounded_lookahead() {
        let t = Topology::paper_reference(1);
        assert!(t.lookahead().is_infinite());
    }
}
