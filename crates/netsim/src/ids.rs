//! Identifiers for clusters and nodes.
//!
//! The paper's architecture model is a federation of clusters, each holding
//! many nodes. Protocol state (SN, DDV) is *per cluster*; messages travel
//! *between nodes*. Identifiers are small `Copy` types so they can be
//! embedded freely in events and protocol messages.

use std::fmt;

/// Index of a cluster within the federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u16);

impl ClusterId {
    /// Zero-based cluster index as `usize` (for table lookups).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// A node, addressed by its cluster and its rank within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId {
    /// The cluster this node belongs to.
    pub cluster: ClusterId,
    /// Zero-based rank within the cluster.
    pub rank: u32,
}

impl NodeId {
    /// Construct from raw parts.
    #[inline]
    pub fn new(cluster: u16, rank: u32) -> Self {
        NodeId {
            cluster: ClusterId(cluster),
            rank,
        }
    }

    /// True if `other` lives in the same cluster.
    #[inline]
    pub fn same_cluster(self, other: NodeId) -> bool {
        self.cluster == other.cluster
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.n{}", self.cluster, self.rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId::new(2, 17).to_string(), "C2.n17");
        assert_eq!(ClusterId(0).to_string(), "C0");
    }

    #[test]
    fn same_cluster_predicate() {
        assert!(NodeId::new(1, 0).same_cluster(NodeId::new(1, 9)));
        assert!(!NodeId::new(1, 0).same_cluster(NodeId::new(2, 0)));
    }

    #[test]
    fn ordering_groups_by_cluster() {
        let a = NodeId::new(0, 99);
        let b = NodeId::new(1, 0);
        assert!(a < b);
    }
}
