//! # netsim — federation network model
//!
//! Substrate crate modelling the paper's architecture (§2.1): clusters whose
//! nodes are joined by a low-latency/high-bandwidth SAN, and clusters joined
//! to each other by higher-latency LAN/WAN links described by a triangular
//! matrix. Provides message delivery timing (latency + bandwidth +
//! optional FIFO contention) and per-cluster-pair traffic accounting — the
//! application-message accounts are exactly the cells of the paper's
//! Table 1.

#![warn(missing_docs)]

pub mod hashing;
pub mod hostile;
pub mod ids;
pub mod network;
pub mod topology;

pub use hashing::{FastHashMap, FastHasher};
pub use hostile::{HostileNet, HostileOutcome, HostileSpec, LatencyDist, Mix64, PartitionSpec};
pub use ids::{ClusterId, NodeId};
pub use network::{ContentionModel, MessageClass, Network, TrafficCell};
pub use topology::{ClusterSpec, LinkSpec, Topology, TriMatrix};
