//! A fast, deterministic hasher for hot-path lookup tables.
//!
//! The standard library's default SipHash is a measurable per-message cost
//! on the simulator's hot path (one per-channel FIFO probe per send). The
//! keys involved — node ids, log ids — are simulation state, not
//! attacker-controlled input, so HashDoS resistance buys nothing here; a
//! multiply-rotate mix in the spirit of rustc's FxHash is both faster and,
//! unlike SipHash's per-process random keys, identical across runs.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FastHasher`] (drop-in for hot-path tables keyed by
/// simulation ids).
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// Multiply-rotate hasher (FxHash-style). Not cryptographic; do not use
/// for attacker-controlled keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher(u64);

const SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FastHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_works_and_is_deterministic() {
        let mut m: FastHashMap<(u16, u32), u64> = FastHashMap::default();
        for i in 0..1000u32 {
            m.insert(((i % 7) as u16, i), i as u64);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(3, 10)), Some(&10));
        assert_eq!(m.get(&(9, 10)), None);
        // Same inputs hash identically across hasher instances (no
        // per-process randomness).
        let mut a = FastHasher::default();
        let mut b = FastHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        let mut a = FastHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FastHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), b.finish());
    }
}
